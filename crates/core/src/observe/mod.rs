//! Offline exporters that turn a recorded trace into standard formats.
//!
//! The sinks in [`xbfs_engine::trace`] deliberately do no interpretation —
//! they buffer or count. This module consumes a buffered event list (from a
//! [`MemorySink`](xbfs_engine::trace::MemorySink)) after the run and
//! renders it two ways:
//!
//! * [`chrome_trace_json`] — the Chrome Trace Event format, loadable in
//!   `chrome://tracing` or <https://ui.perfetto.dev>: one track per device
//!   (cpu / gpu / link), one for the recovery ladder, one for the pure
//!   engine; levels, kernel attempts, transfers, backoffs, and checkpoints
//!   as duration spans; faults, breaker flips, and resumes as instants;
//!   decomposed kernel costs as counter series.
//! * [`prometheus_text`] — the Prometheus text exposition format: counters
//!   keyed by device, rung, and direction, plus a per-device histogram of
//!   simulated level durations.
//!
//! Both outputs are deterministic for a given event list (stable sorts,
//! `BTreeMap`-ordered label sets), which is what lets the golden-file test
//! pin the chrome trace byte-for-byte.
//!
//! The [`timeseries`] submodule is the *online* counterpart: a
//! simulated-clock windowed registry the service feeds while it runs,
//! with log-bucketed quantiles and SLO evaluation.

use crate::audit::DecisionAudit;
use crate::service::QueryTrace;
use serde_json::{json, Value};
use std::collections::BTreeMap;
use xbfs_engine::trace::TraceEvent;
use xbfs_engine::Direction;

pub mod timeseries;

/// Stable lowercase label for a direction, for metric keys and span names.
fn dir_label(d: Direction) -> &'static str {
    match d {
        Direction::TopDown => "td",
        Direction::BottomUp => "bu",
    }
}

/// Thread-track id a device label renders on in the chrome trace.
fn device_tid(device: &str) -> u64 {
    match device {
        "cpu" => 1,
        "gpu" => 2,
        "link" => 3,
        _ => 0,
    }
}

/// Track id for a fault-op label (faults render on the device they hit).
fn op_tid(op: &str) -> u64 {
    match op {
        "cpu-kernel" => 1,
        "gpu-kernel" => 2,
        "transfer" => 3,
        _ => 0,
    }
}

const ENGINE_TID: u64 = 4;

fn micros(s: f64) -> f64 {
    s * 1e6
}

/// Service-track state shared across [`render_events`] calls: open
/// query spans awaiting their `QueryEnd`, and whether any service event
/// appeared at all (the `service` track's metadata is emitted only when
/// used, keeping pre-service traces byte-identical).
#[derive(Default)]
struct ServiceTrack {
    /// Open `(query, span start on the service clock, wait_s)` entries.
    open: Vec<(u64, f64, f64)>,
    seen: bool,
}

/// Thread-track id service-level events render on.
const SERVICE_TID: u64 = 5;

/// Per-query processes in the service export start at this pid.
const QUERY_PID_BASE: u64 = 10;

/// Append `events` to `records` as chrome trace records under process
/// `pid`, shifting timestamps by `offset_s` (how per-query clocks are
/// placed onto the service clock). `seq0` seeds the tiebreak sequence;
/// the next free sequence number is returned.
fn render_events(
    events: &[TraceEvent],
    pid: u64,
    offset_s: f64,
    seq0: usize,
    svc: &mut ServiceTrack,
    records: &mut Vec<(f64, usize, Value)>,
) -> usize {
    let mut push = |ts: f64, seq: usize, v: Value| records.push((ts, seq, v));

    // The pure engine has no simulated clock; lay its levels end to end.
    let mut engine_cursor_s = 0.0;
    // Rungs never nest, so one open slot pairs RungBegin with RungEnd.
    let mut open_rung: Option<(&'static str, f64)> = None;

    for (seq, ev) in events.iter().enumerate() {
        let seq = seq0 + seq;
        match ev {
            TraceEvent::RungBegin { rung, at_s } => {
                open_rung = Some((rung, *at_s));
            }
            TraceEvent::RungEnd {
                rung,
                at_s,
                outcome,
            } => {
                let start_s = match open_rung.take() {
                    Some((r, s)) if r == *rung => s,
                    _ => *at_s,
                };
                push(
                    micros(offset_s + start_s),
                    seq,
                    json!({
                        "name": format!("rung:{rung}"),
                        "cat": "rung",
                        "ph": "X",
                        "ts": micros(offset_s + start_s),
                        "dur": micros(at_s - start_s),
                        "pid": pid,
                        "tid": 0,
                        "args": {"outcome": outcome.name()}
                    }),
                );
            }
            TraceEvent::RungSkipped { rung, device, at_s } => {
                push(
                    micros(offset_s + *at_s),
                    seq,
                    json!({
                        "name": format!("rung-skipped:{rung}"),
                        "cat": "rung",
                        "ph": "i",
                        "ts": micros(offset_s + *at_s),
                        "pid": pid,
                        "tid": 0,
                        "s": "t",
                        "args": {"device": *device}
                    }),
                );
            }
            TraceEvent::Level {
                rung,
                device,
                level,
                direction,
                frontier_vertices,
                frontier_edges,
                edges_examined,
                discovered,
                start_s,
                end_s,
            } => {
                push(
                    micros(offset_s + *start_s),
                    seq,
                    json!({
                        "name": format!("level {level} {}", dir_label(*direction)),
                        "cat": "level",
                        "ph": "X",
                        "ts": micros(offset_s + *start_s),
                        "dur": micros(end_s - start_s),
                        "pid": pid,
                        "tid": device_tid(device),
                        "args": {
                            "rung": *rung,
                            "frontier_vertices": *frontier_vertices,
                            "frontier_edges": *frontier_edges,
                            "edges_examined": *edges_examined,
                            "discovered": *discovered
                        }
                    }),
                );
            }
            TraceEvent::Kernel {
                device,
                op,
                level,
                attempt,
                start_s,
                end_s,
                ok,
            } => {
                push(
                    micros(offset_s + *start_s),
                    seq,
                    json!({
                        "name": *op,
                        "cat": "kernel",
                        "ph": "X",
                        "ts": micros(offset_s + *start_s),
                        "dur": micros(end_s - start_s),
                        "pid": pid,
                        "tid": device_tid(device),
                        "args": {"level": *level, "attempt": *attempt, "ok": *ok}
                    }),
                );
            }
            TraceEvent::Transfer {
                level,
                bytes,
                attempt,
                start_s,
                end_s,
                ok,
            } => {
                push(
                    micros(offset_s + *start_s),
                    seq,
                    json!({
                        "name": "transfer",
                        "cat": "transfer",
                        "ph": "X",
                        "ts": micros(offset_s + *start_s),
                        "dur": micros(end_s - start_s),
                        "pid": pid,
                        "tid": 3,
                        "args": {"level": *level, "bytes": *bytes, "attempt": *attempt, "ok": *ok}
                    }),
                );
            }
            TraceEvent::Backoff {
                op,
                level,
                retry,
                start_s,
                end_s,
            } => {
                push(
                    micros(offset_s + *start_s),
                    seq,
                    json!({
                        "name": format!("backoff:{op}"),
                        "cat": "retry",
                        "ph": "X",
                        "ts": micros(offset_s + *start_s),
                        "dur": micros(end_s - start_s),
                        "pid": pid,
                        "tid": 0,
                        "args": {"level": *level, "retry": *retry}
                    }),
                );
            }
            TraceEvent::Fault {
                op,
                kind,
                level,
                attempt,
                at_s,
            } => {
                push(
                    micros(offset_s + *at_s),
                    seq,
                    json!({
                        "name": format!("fault:{kind}"),
                        "cat": "fault",
                        "ph": "i",
                        "ts": micros(offset_s + *at_s),
                        "pid": pid,
                        "tid": op_tid(op),
                        "s": "t",
                        "args": {"op": *op, "level": *level, "attempt": *attempt}
                    }),
                );
            }
            TraceEvent::Breaker {
                device,
                from,
                to,
                cause,
                at_s,
            } => {
                push(
                    micros(offset_s + *at_s),
                    seq,
                    json!({
                        "name": format!("breaker:{from}->{to}"),
                        "cat": "breaker",
                        "ph": "i",
                        "ts": micros(offset_s + *at_s),
                        "pid": pid,
                        "tid": device_tid(device),
                        "s": "t",
                        "args": {"cause": *cause}
                    }),
                );
            }
            TraceEvent::Checkpoint {
                rung,
                level,
                bytes,
                spilled,
                start_s,
                end_s,
            } => {
                push(
                    micros(offset_s + *start_s),
                    seq,
                    json!({
                        "name": "checkpoint",
                        "cat": "checkpoint",
                        "ph": "X",
                        "ts": micros(offset_s + *start_s),
                        "dur": micros(end_s - start_s),
                        "pid": pid,
                        "tid": 0,
                        "args": {
                            "rung": *rung,
                            "level": *level,
                            "bytes": *bytes,
                            "spilled": *spilled
                        }
                    }),
                );
            }
            TraceEvent::Resume {
                rung,
                from_level,
                translated,
                external,
                at_s,
            } => {
                push(
                    micros(offset_s + *at_s),
                    seq,
                    json!({
                        "name": "resume",
                        "cat": "checkpoint",
                        "ph": "i",
                        "ts": micros(offset_s + *at_s),
                        "pid": pid,
                        "tid": 0,
                        "s": "t",
                        "args": {
                            "rung": *rung,
                            "from_level": *from_level,
                            "translated": *translated,
                            "external": *external
                        }
                    }),
                );
            }
            TraceEvent::KernelCost {
                device,
                level,
                direction,
                total_s,
                overhead_s,
                work_s,
                bound,
                at_s,
            } => {
                push(
                    micros(offset_s + *at_s),
                    seq,
                    json!({
                        "name": format!("cost:{device}"),
                        "cat": "cost",
                        "ph": "C",
                        "ts": micros(offset_s + *at_s),
                        "pid": pid,
                        "tid": device_tid(device),
                        "args": {
                            "overhead_us": micros(*overhead_s),
                            "work_us": micros(*work_s),
                            "total_us": micros(*total_s),
                            "level": *level,
                            "direction": dir_label(*direction),
                            "bound": *bound
                        }
                    }),
                );
            }
            TraceEvent::EngineLevel {
                level,
                direction,
                frontier_vertices,
                frontier_edges,
                edges_examined,
                discovered,
                wall_s,
            } => {
                let start_s = engine_cursor_s;
                engine_cursor_s += *wall_s;
                push(
                    micros(offset_s + start_s),
                    seq,
                    json!({
                        "name": format!("level {level} {}", dir_label(*direction)),
                        "cat": "engine-level",
                        "ph": "X",
                        "ts": micros(offset_s + start_s),
                        "dur": micros(*wall_s),
                        "pid": pid,
                        "tid": ENGINE_TID,
                        "args": {
                            "frontier_vertices": *frontier_vertices,
                            "frontier_edges": *frontier_edges,
                            "edges_examined": *edges_examined,
                            "discovered": *discovered
                        }
                    }),
                );
            }
            TraceEvent::QueryAdmitted {
                query,
                queue_depth,
                at_s,
            } => {
                svc.seen = true;
                push(
                    micros(offset_s + *at_s),
                    seq,
                    json!({
                        "name": format!("admit:{query}"),
                        "cat": "service",
                        "ph": "i",
                        "ts": micros(offset_s + *at_s),
                        "pid": pid,
                        "tid": SERVICE_TID,
                        "s": "t",
                        "args": {"queue_depth": *queue_depth}
                    }),
                );
            }
            TraceEvent::QueryStart {
                query,
                wait_s,
                at_s,
            } => {
                // The span renders at QueryEnd; remember its start here.
                svc.seen = true;
                svc.open.push((*query, offset_s + *at_s, *wait_s));
            }
            TraceEvent::QueryEnd {
                query,
                outcome,
                rung,
                at_s,
            } => {
                svc.seen = true;
                let end = offset_s + *at_s;
                let (start, wait_s) = match svc.open.iter().position(|(q, _, _)| q == query) {
                    Some(i) => {
                        let (_, s, w) = svc.open.remove(i);
                        (s, w)
                    }
                    None => (end, 0.0),
                };
                push(
                    micros(start),
                    seq,
                    json!({
                        "name": format!("query {query}"),
                        "cat": "service",
                        "ph": "X",
                        "ts": micros(start),
                        "dur": micros(end - start),
                        "pid": pid,
                        "tid": SERVICE_TID,
                        "args": {"outcome": *outcome, "rung": *rung, "wait_s": wait_s}
                    }),
                );
            }
            TraceEvent::QueryShed {
                query,
                reason,
                queue_depth,
                at_s,
            } => {
                svc.seen = true;
                push(
                    micros(offset_s + *at_s),
                    seq,
                    json!({
                        "name": format!("shed:{query}"),
                        "cat": "service",
                        "ph": "i",
                        "ts": micros(offset_s + *at_s),
                        "pid": pid,
                        "tid": SERVICE_TID,
                        "s": "t",
                        "args": {"reason": *reason, "queue_depth": *queue_depth}
                    }),
                );
            }
            TraceEvent::QueueDepth { depth, at_s } => {
                svc.seen = true;
                push(
                    micros(offset_s + *at_s),
                    seq,
                    json!({
                        "name": "queue-depth",
                        "cat": "service",
                        "ph": "C",
                        "ts": micros(offset_s + *at_s),
                        "pid": pid,
                        "tid": SERVICE_TID,
                        "args": {"depth": *depth}
                    }),
                );
            }
            TraceEvent::CorruptionDetected {
                rung,
                detector,
                level,
                at_s,
            } => {
                push(
                    micros(offset_s + *at_s),
                    seq,
                    json!({
                        "name": format!("corruption:{detector}"),
                        "cat": "corruption",
                        "ph": "i",
                        "ts": micros(offset_s + *at_s),
                        "pid": pid,
                        "tid": 0,
                        "s": "t",
                        "args": {"rung": *rung, "level": *level}
                    }),
                );
            }
            TraceEvent::CorruptionRepair {
                rung,
                action,
                to_level,
                attempt,
                at_s,
            } => {
                push(
                    micros(offset_s + *at_s),
                    seq,
                    json!({
                        "name": format!("repair:{action}"),
                        "cat": "corruption",
                        "ph": "i",
                        "ts": micros(offset_s + *at_s),
                        "pid": pid,
                        "tid": 0,
                        "s": "t",
                        "args": {"rung": *rung, "to_level": *to_level, "attempt": *attempt}
                    }),
                );
            }
            TraceEvent::BatchBegin {
                lanes,
                window,
                at_s,
            } => {
                push(
                    micros(offset_s + *at_s),
                    seq,
                    json!({
                        "name": format!("batch:{lanes}-lanes"),
                        "cat": "batch",
                        "ph": "i",
                        "ts": micros(offset_s + *at_s),
                        "pid": pid,
                        "tid": 0,
                        "s": "t",
                        "args": {"lanes": *lanes, "window": *window}
                    }),
                );
            }
            TraceEvent::BatchLane {
                lane,
                query,
                source,
                at_s,
            } => {
                svc.seen = true;
                push(
                    micros(offset_s + *at_s),
                    seq,
                    json!({
                        "name": format!("lane:{lane}"),
                        "cat": "batch",
                        "ph": "i",
                        "ts": micros(offset_s + *at_s),
                        "pid": pid,
                        "tid": SERVICE_TID,
                        "s": "t",
                        "args": {"lane": *lane, "query": *query, "source": *source}
                    }),
                );
            }
            TraceEvent::BatchLevel {
                device,
                level,
                direction,
                lanes,
                frontier_vertices,
                edges_examined,
                seconds,
                at_s,
            } => {
                push(
                    micros(offset_s + *at_s),
                    seq,
                    json!({
                        "name": format!("batch round {level} {}", dir_label(*direction)),
                        "cat": "batch",
                        "ph": "X",
                        "ts": micros(offset_s + *at_s),
                        "dur": micros(*seconds),
                        "pid": pid,
                        "tid": device_tid(device),
                        "args": {
                            "lanes": *lanes,
                            "frontier_vertices": *frontier_vertices,
                            "edges_examined": *edges_examined
                        }
                    }),
                );
            }
            TraceEvent::BatchEnd {
                lanes,
                levels,
                at_s,
            } => {
                push(
                    micros(offset_s + *at_s),
                    seq,
                    json!({
                        "name": "batch-end",
                        "cat": "batch",
                        "ph": "i",
                        "ts": micros(offset_s + *at_s),
                        "pid": pid,
                        "tid": 0,
                        "s": "t",
                        "args": {"lanes": *lanes, "levels": *levels}
                    }),
                );
            }
            TraceEvent::PolicyDecision {
                level,
                bin,
                device,
                direction,
                explore,
                at_s,
            } => {
                push(
                    micros(offset_s + *at_s),
                    seq,
                    json!({
                        "name": format!("policy L{level} {}", dir_label(*direction)),
                        "cat": "policy",
                        "ph": "i",
                        "ts": micros(offset_s + *at_s),
                        "pid": pid,
                        "tid": device_tid(device),
                        "s": "t",
                        "args": {
                            "level": *level,
                            "bin": *bin,
                            "explore": *explore
                        }
                    }),
                );
            }
        }
    }
    seq0 + events.len()
}

fn process_meta(pid: u64, name: &str) -> Value {
    json!({"name": "process_name", "ph": "M", "pid": pid, "args": {"name": name}})
}

fn thread_meta(pid: u64, tid: u64, name: &str) -> Value {
    json!({
        "name": "thread_name",
        "ph": "M",
        "pid": pid,
        "tid": tid,
        "args": {"name": name}
    })
}

/// Sort records by timestamp (stable on original event order) and strip
/// the sort keys.
fn sorted_values(mut records: Vec<(f64, usize, Value)>) -> Vec<Value> {
    records.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.1.cmp(&b.1))
    });
    records.into_iter().map(|(_, _, v)| v).collect()
}

const DEVICE_TRACKS: [(u64, &str); 5] = [
    (0, "ladder"),
    (1, "cpu"),
    (2, "gpu"),
    (3, "link"),
    (ENGINE_TID, "engine"),
];

/// Render `events` as a Chrome Trace Event JSON document.
///
/// The output is a single JSON object `{"traceEvents": [...],
/// "displayTimeUnit": "ms"}`. Metadata records name the process and the
/// five tracks (plus a sixth, `service`, only when service-level events
/// appear); every other record is sorted by timestamp (stable on the
/// original event order), so timestamps are monotone — a property the
/// golden test pins. Load the result in `chrome://tracing` or Perfetto.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut records: Vec<(f64, usize, Value)> = Vec::new();
    let mut svc = ServiceTrack::default();
    render_events(events, 1, 0.0, 0, &mut svc, &mut records);

    let mut trace_events: Vec<Value> = vec![process_meta(1, "xbfs")];
    for (tid, name) in DEVICE_TRACKS {
        trace_events.push(thread_meta(1, tid, name));
    }
    if svc.seen {
        trace_events.push(thread_meta(1, SERVICE_TID, "service"));
    }
    trace_events.extend(sorted_values(records));

    let doc = json!({"traceEvents": trace_events, "displayTimeUnit": "ms"});
    serde_json::to_string_pretty(&doc).expect("chrome trace serializes")
}

/// Render a whole service run — admission events plus every buffered
/// per-query trace — as one Chrome Trace Event JSON document.
///
/// The service itself is process 1 (`xbfs-service`, one `service` track
/// with query spans, shed/admit instants, and the queue-depth counter).
/// Each query renders as its own process (`query-<id>`) with the usual
/// five device tracks, its private clock shifted onto the service clock
/// by its start time — so Perfetto shows the queries genuinely
/// overlapping in service time.
pub fn service_chrome_trace_json(service_events: &[TraceEvent], queries: &[QueryTrace]) -> String {
    let mut records: Vec<(f64, usize, Value)> = Vec::new();
    let mut svc = ServiceTrack::default();
    let mut seq = render_events(service_events, 1, 0.0, 0, &mut svc, &mut records);

    let mut trace_events: Vec<Value> = vec![
        process_meta(1, "xbfs-service"),
        thread_meta(1, SERVICE_TID, "service"),
    ];
    for qt in queries {
        let pid = QUERY_PID_BASE + qt.query;
        trace_events.push(process_meta(pid, &format!("query-{}", qt.query)));
        for (tid, name) in DEVICE_TRACKS {
            trace_events.push(thread_meta(pid, tid, name));
        }
        seq = render_events(&qt.events, pid, qt.start_s, seq, &mut svc, &mut records);
    }
    trace_events.extend(sorted_values(records));

    let doc = json!({"traceEvents": trace_events, "displayTimeUnit": "ms"});
    serde_json::to_string_pretty(&doc).expect("service chrome trace serializes")
}

/// A family of counters with a shared name, keyed by a rendered label set.
#[derive(Default)]
struct Counter {
    series: BTreeMap<String, f64>,
}

impl Counter {
    fn add(&mut self, labels: &[(&str, &str)], v: f64) {
        *self.series.entry(render_labels(labels)).or_insert(0.0) += v;
    }
}

/// Escape a label value per the Prometheus text exposition format:
/// backslash, double quote, and line feed must be escaped; everything else
/// passes through.
fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

pub(crate) fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    format!("{{{}}}", inner.join(","))
}

/// Prometheus prints integers bare and everything else in the shortest
/// round-trip form `{}` already produces for `f64`.
fn render_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn write_counter(out: &mut String, name: &str, help: &str, c: &Counter) {
    if c.series.is_empty() {
        return;
    }
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n"));
    for (labels, v) in &c.series {
        out.push_str(&format!("{name}{labels} {}\n", render_value(*v)));
    }
}

/// Histogram bucket upper bounds for simulated level durations, seconds.
const LEVEL_BUCKETS_S: [f64; 6] = [1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0];

#[derive(Default)]
struct Histogram {
    // label set → (per-bucket cumulative-style raw counts, sum, count)
    series: BTreeMap<String, ([u64; LEVEL_BUCKETS_S.len()], f64, u64)>,
}

impl Histogram {
    fn observe(&mut self, labels: &[(&str, &str)], v: f64) {
        let entry = self.series.entry(render_labels(labels)).or_insert((
            [0; LEVEL_BUCKETS_S.len()],
            0.0,
            0,
        ));
        for (i, le) in LEVEL_BUCKETS_S.iter().enumerate() {
            if v <= *le {
                entry.0[i] += 1;
            }
        }
        entry.1 += v;
        entry.2 += 1;
    }
}

fn write_histogram(out: &mut String, name: &str, help: &str, h: &Histogram) {
    if h.series.is_empty() {
        return;
    }
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} histogram\n"));
    for (labels, (buckets, sum, count)) in &h.series {
        // Splice the `le` label into the rendered set.
        let open = |le: &str| {
            if labels.is_empty() {
                format!("{{le=\"{le}\"}}")
            } else {
                format!("{},le=\"{le}\"}}", &labels[..labels.len() - 1])
            }
        };
        for (i, le) in LEVEL_BUCKETS_S.iter().enumerate() {
            out.push_str(&format!(
                "{name}_bucket{} {}\n",
                open(&format!("{le}")),
                buckets[i]
            ));
        }
        out.push_str(&format!("{name}_bucket{} {count}\n", open("+Inf")));
        out.push_str(&format!("{name}_sum{labels} {}\n", render_value(*sum)));
        out.push_str(&format!("{name}_count{labels} {count}\n"));
    }
}

/// Render `events` in the Prometheus text exposition format.
///
/// Counters are keyed by device, rung, direction, outcome, or fault kind as
/// appropriate; simulated level durations additionally feed a per-device
/// histogram. Output order is deterministic (`BTreeMap` label ordering), so
/// the text is diff-stable across runs of the same trace.
pub fn prometheus_text(events: &[TraceEvent]) -> String {
    let mut levels = Counter::default();
    let mut level_edges = Counter::default();
    let mut level_seconds = Histogram::default();
    let mut kernel_attempts = Counter::default();
    let mut transfer_attempts = Counter::default();
    let mut transfer_bytes = Counter::default();
    let mut faults = Counter::default();
    let mut backoff_seconds = Counter::default();
    let mut breaker_transitions = Counter::default();
    let mut checkpoints = Counter::default();
    let mut checkpoint_bytes = Counter::default();
    let mut resumes = Counter::default();
    let mut rungs = Counter::default();
    let mut rungs_skipped = Counter::default();
    let mut engine_levels = Counter::default();
    let mut engine_seconds = Counter::default();
    let mut service_admitted = Counter::default();
    let mut service_shed = Counter::default();
    let mut service_queries = Counter::default();
    let mut service_wait_seconds = Counter::default();
    let mut service_latency = Histogram::default();
    let mut admitted_at: BTreeMap<u64, f64> = BTreeMap::new();
    let mut queue_depth_peak: Option<u32> = None;
    let mut corruption_detected = Counter::default();
    let mut corruption_repairs = Counter::default();
    let mut batch_dispatches = Counter::default();
    let mut batch_lanes = Counter::default();
    let mut batch_lane_queries = Counter::default();
    let mut batch_levels = Counter::default();
    let mut batch_level_seconds = Counter::default();
    let mut policy_decisions = Counter::default();
    let mut policy_explorations = Counter::default();

    for ev in events {
        match ev {
            TraceEvent::RungBegin { .. } => {}
            TraceEvent::RungEnd { rung, outcome, .. } => {
                rungs.add(&[("rung", rung), ("outcome", outcome.name())], 1.0);
            }
            TraceEvent::RungSkipped { rung, device, .. } => {
                rungs_skipped.add(&[("rung", rung), ("device", device)], 1.0);
            }
            TraceEvent::Level {
                rung,
                device,
                direction,
                edges_examined,
                start_s,
                end_s,
                ..
            } => {
                let key = [
                    ("device", *device),
                    ("rung", *rung),
                    ("direction", dir_label(*direction)),
                ];
                levels.add(&key, 1.0);
                level_edges.add(&key, *edges_examined as f64);
                level_seconds.observe(&[("device", *device)], end_s - start_s);
            }
            TraceEvent::Kernel { device, ok, .. } => {
                kernel_attempts.add(
                    &[
                        ("device", device),
                        ("ok", if *ok { "true" } else { "false" }),
                    ],
                    1.0,
                );
            }
            TraceEvent::Transfer { bytes, ok, .. } => {
                let ok_label = if *ok { "true" } else { "false" };
                transfer_attempts.add(&[("ok", ok_label)], 1.0);
                transfer_bytes.add(&[("ok", ok_label)], *bytes as f64);
            }
            TraceEvent::Backoff {
                op, start_s, end_s, ..
            } => {
                backoff_seconds.add(&[("op", op)], end_s - start_s);
            }
            TraceEvent::Fault { op, kind, .. } => {
                faults.add(&[("op", op), ("kind", kind)], 1.0);
            }
            TraceEvent::Breaker { device, to, .. } => {
                breaker_transitions.add(&[("device", device), ("to", to)], 1.0);
            }
            TraceEvent::Checkpoint {
                rung,
                bytes,
                spilled,
                ..
            } => {
                let key = [
                    ("rung", *rung),
                    ("spilled", if *spilled { "true" } else { "false" }),
                ];
                checkpoints.add(&key, 1.0);
                checkpoint_bytes.add(&key, *bytes as f64);
            }
            TraceEvent::Resume { rung, .. } => {
                resumes.add(&[("rung", rung)], 1.0);
            }
            TraceEvent::KernelCost { .. } => {}
            TraceEvent::EngineLevel {
                direction, wall_s, ..
            } => {
                let key = [("direction", dir_label(*direction))];
                engine_levels.add(&key, 1.0);
                engine_seconds.add(&key, *wall_s);
            }
            TraceEvent::QueryAdmitted { query, at_s, .. } => {
                service_admitted.add(&[], 1.0);
                admitted_at.insert(*query, *at_s);
            }
            TraceEvent::QueryStart { wait_s, .. } => {
                service_wait_seconds.add(&[], *wait_s);
            }
            TraceEvent::QueryEnd {
                query,
                outcome,
                at_s,
                ..
            } => {
                service_queries.add(&[("outcome", outcome)], 1.0);
                if let Some(admit_s) = admitted_at.get(query) {
                    service_latency.observe(&[("outcome", outcome)], at_s - admit_s);
                }
            }
            TraceEvent::QueryShed { reason, .. } => {
                service_shed.add(&[("reason", reason)], 1.0);
            }
            TraceEvent::QueueDepth { depth, .. } => {
                queue_depth_peak = Some(queue_depth_peak.unwrap_or(0).max(*depth));
            }
            TraceEvent::CorruptionDetected { rung, detector, .. } => {
                corruption_detected.add(&[("detector", detector), ("rung", rung)], 1.0);
            }
            TraceEvent::CorruptionRepair { rung, action, .. } => {
                corruption_repairs.add(&[("action", action), ("rung", rung)], 1.0);
            }
            TraceEvent::BatchBegin { lanes, .. } => {
                batch_dispatches.add(&[], 1.0);
                batch_lanes.add(&[], f64::from(*lanes));
            }
            TraceEvent::BatchLane { .. } => {
                batch_lane_queries.add(&[], 1.0);
            }
            TraceEvent::BatchLevel {
                device,
                direction,
                seconds,
                ..
            } => {
                let key = [("device", *device), ("direction", dir_label(*direction))];
                batch_levels.add(&key, 1.0);
                batch_level_seconds.add(&key, *seconds);
            }
            TraceEvent::BatchEnd { .. } => {}
            TraceEvent::PolicyDecision {
                device,
                direction,
                explore,
                ..
            } => {
                let key = [("device", *device), ("direction", dir_label(*direction))];
                policy_decisions.add(&key, 1.0);
                if *explore {
                    policy_explorations.add(&key, 1.0);
                }
            }
        }
    }

    let mut out = String::new();
    write_counter(
        &mut out,
        "xbfs_levels_total",
        "BFS levels executed under the simulated cost model.",
        &levels,
    );
    write_counter(
        &mut out,
        "xbfs_level_edges_examined_total",
        "Edges examined by simulated levels.",
        &level_edges,
    );
    write_histogram(
        &mut out,
        "xbfs_level_seconds",
        "Simulated duration of BFS levels, per device.",
        &level_seconds,
    );
    write_counter(
        &mut out,
        "xbfs_kernel_attempts_total",
        "Kernel attempts on the fault/retry path.",
        &kernel_attempts,
    );
    write_counter(
        &mut out,
        "xbfs_transfer_attempts_total",
        "Host-device transfer attempts across the link.",
        &transfer_attempts,
    );
    write_counter(
        &mut out,
        "xbfs_transfer_bytes_total",
        "Bytes moved (nominal payload) by transfer attempts.",
        &transfer_bytes,
    );
    write_counter(
        &mut out,
        "xbfs_faults_total",
        "Injected faults observed.",
        &faults,
    );
    write_counter(
        &mut out,
        "xbfs_backoff_seconds_total",
        "Simulated seconds spent in retry backoff.",
        &backoff_seconds,
    );
    write_counter(
        &mut out,
        "xbfs_breaker_transitions_total",
        "Circuit-breaker state transitions.",
        &breaker_transitions,
    );
    write_counter(
        &mut out,
        "xbfs_checkpoints_total",
        "Level-boundary checkpoints captured.",
        &checkpoints,
    );
    write_counter(
        &mut out,
        "xbfs_checkpoint_bytes_total",
        "Serialized bytes across captured checkpoints.",
        &checkpoint_bytes,
    );
    write_counter(
        &mut out,
        "xbfs_resumes_total",
        "Rungs that started from a checkpoint.",
        &resumes,
    );
    write_counter(
        &mut out,
        "xbfs_rungs_total",
        "Recovery-ladder rungs finished, by outcome.",
        &rungs,
    );
    write_counter(
        &mut out,
        "xbfs_rungs_skipped_total",
        "Rungs skipped by an open circuit breaker.",
        &rungs_skipped,
    );
    write_counter(
        &mut out,
        "xbfs_engine_levels_total",
        "Levels executed by the pure engine (wall-clock timed).",
        &engine_levels,
    );
    write_counter(
        &mut out,
        "xbfs_engine_level_seconds_total",
        "Wall-clock seconds across pure-engine levels.",
        &engine_seconds,
    );
    write_counter(
        &mut out,
        "xbfs_service_admitted_total",
        "Queries admitted by the service (started or queued).",
        &service_admitted,
    );
    write_counter(
        &mut out,
        "xbfs_service_shed_total",
        "Queries shed by admission control, by reason.",
        &service_shed,
    );
    write_counter(
        &mut out,
        "xbfs_service_queries_total",
        "Queries reaching a terminal state, by outcome.",
        &service_queries,
    );
    write_counter(
        &mut out,
        "xbfs_service_wait_seconds_total",
        "Simulated seconds queries spent queued before starting.",
        &service_wait_seconds,
    );
    write_histogram(
        &mut out,
        "xbfs_service_latency_seconds",
        "Admission-to-completion latency of terminal queries, by outcome.",
        &service_latency,
    );
    if let Some(peak) = queue_depth_peak {
        write_gauge(
            &mut out,
            "xbfs_service_queue_depth_peak",
            "Deepest the admission queue got over the trace.",
            &[(String::new(), peak as f64)],
        );
    }
    write_counter(
        &mut out,
        "xbfs_corruption_detected_total",
        "Silent-data-corruption detections, by detector.",
        &corruption_detected,
    );
    write_counter(
        &mut out,
        "xbfs_corruption_repairs_total",
        "Corruption repairs the recovery ladder performed, by action.",
        &corruption_repairs,
    );
    write_counter(
        &mut out,
        "xbfs_batch_dispatches_total",
        "Lane-packed batch traversals dispatched.",
        &batch_dispatches,
    );
    write_counter(
        &mut out,
        "xbfs_batch_lanes_total",
        "Lanes (sources) carried across all batch dispatches.",
        &batch_lanes,
    );
    write_counter(
        &mut out,
        "xbfs_batch_lane_queries_total",
        "Service queries that rode a batch lane.",
        &batch_lane_queries,
    );
    write_counter(
        &mut out,
        "xbfs_batch_levels_total",
        "Lockstep batch rounds executed, by device and direction.",
        &batch_levels,
    );
    write_counter(
        &mut out,
        "xbfs_batch_level_seconds_total",
        "Simulated seconds charged to lockstep batch rounds.",
        &batch_level_seconds,
    );
    write_counter(
        &mut out,
        "xbfs_policy_decisions_total",
        "Online-policy per-level placement decisions, by device and direction.",
        &policy_decisions,
    );
    write_counter(
        &mut out,
        "xbfs_policy_explorations_total",
        "Online-policy decisions still exploring unplayed arms.",
        &policy_explorations,
    );
    out
}

/// Render one [`TraceEvent`] as a self-describing JSON object (an
/// `"event"` discriminant plus the variant's fields, verbatim).
///
/// This is the flight-recorder post-mortem format: when a query fails,
/// the service dumps the last N ring-buffered events through this
/// function so the artifact is greppable without the chrome-trace
/// machinery. Field names match the [`TraceEvent`] declaration, so the
/// dump doubles as documentation of what the recorder saw.
pub fn trace_event_json(ev: &TraceEvent) -> Value {
    match ev {
        TraceEvent::RungBegin { rung, at_s } => {
            json!({"event": "rung-begin", "rung": rung, "at_s": at_s})
        }
        TraceEvent::RungEnd {
            rung,
            at_s,
            outcome,
        } => {
            json!({"event": "rung-end", "rung": rung, "at_s": at_s, "outcome": outcome.name()})
        }
        TraceEvent::RungSkipped { rung, device, at_s } => {
            json!({"event": "rung-skipped", "rung": rung, "device": device, "at_s": at_s})
        }
        TraceEvent::Level {
            rung,
            device,
            level,
            direction,
            frontier_vertices,
            frontier_edges,
            edges_examined,
            discovered,
            start_s,
            end_s,
        } => json!({
            "event": "level", "rung": rung, "device": device, "level": level,
            "direction": dir_label(*direction), "frontier_vertices": frontier_vertices,
            "frontier_edges": frontier_edges, "edges_examined": edges_examined,
            "discovered": discovered, "start_s": start_s, "end_s": end_s,
        }),
        TraceEvent::Kernel {
            device,
            op,
            level,
            attempt,
            start_s,
            end_s,
            ok,
        } => json!({
            "event": "kernel", "device": device, "op": op, "level": level,
            "attempt": attempt, "start_s": start_s, "end_s": end_s, "ok": ok,
        }),
        TraceEvent::Transfer {
            level,
            bytes,
            attempt,
            start_s,
            end_s,
            ok,
        } => json!({
            "event": "transfer", "level": level, "bytes": bytes, "attempt": attempt,
            "start_s": start_s, "end_s": end_s, "ok": ok,
        }),
        TraceEvent::Backoff {
            op,
            level,
            retry,
            start_s,
            end_s,
        } => json!({
            "event": "backoff", "op": op, "level": level, "retry": retry,
            "start_s": start_s, "end_s": end_s,
        }),
        TraceEvent::Fault {
            op,
            kind,
            level,
            attempt,
            at_s,
        } => json!({
            "event": "fault", "op": op, "kind": kind, "level": level,
            "attempt": attempt, "at_s": at_s,
        }),
        TraceEvent::Breaker {
            device,
            from,
            to,
            cause,
            at_s,
        } => json!({
            "event": "breaker", "device": device, "from": from, "to": to,
            "cause": cause, "at_s": at_s,
        }),
        TraceEvent::Checkpoint {
            rung,
            level,
            bytes,
            spilled,
            start_s,
            end_s,
        } => json!({
            "event": "checkpoint", "rung": rung, "level": level, "bytes": bytes,
            "spilled": spilled, "start_s": start_s, "end_s": end_s,
        }),
        TraceEvent::Resume {
            rung,
            from_level,
            translated,
            external,
            at_s,
        } => json!({
            "event": "resume", "rung": rung, "from_level": from_level,
            "translated": translated, "external": external, "at_s": at_s,
        }),
        TraceEvent::KernelCost {
            device,
            level,
            direction,
            total_s,
            overhead_s,
            work_s,
            bound,
            at_s,
        } => json!({
            "event": "kernel-cost", "device": device, "level": level,
            "direction": dir_label(*direction), "total_s": total_s,
            "overhead_s": overhead_s, "work_s": work_s, "bound": bound, "at_s": at_s,
        }),
        TraceEvent::EngineLevel {
            level,
            direction,
            frontier_vertices,
            frontier_edges,
            edges_examined,
            discovered,
            wall_s,
        } => json!({
            "event": "engine-level", "level": level, "direction": dir_label(*direction),
            "frontier_vertices": frontier_vertices, "frontier_edges": frontier_edges,
            "edges_examined": edges_examined, "discovered": discovered, "wall_s": wall_s,
        }),
        TraceEvent::QueryAdmitted {
            query,
            queue_depth,
            at_s,
        } => json!({
            "event": "query-admitted", "query": query, "queue_depth": queue_depth,
            "at_s": at_s,
        }),
        TraceEvent::QueryStart {
            query,
            wait_s,
            at_s,
        } => {
            json!({"event": "query-start", "query": query, "wait_s": wait_s, "at_s": at_s})
        }
        TraceEvent::QueryEnd {
            query,
            outcome,
            rung,
            at_s,
        } => json!({
            "event": "query-end", "query": query, "outcome": outcome, "rung": rung,
            "at_s": at_s,
        }),
        TraceEvent::QueryShed {
            query,
            reason,
            queue_depth,
            at_s,
        } => json!({
            "event": "query-shed", "query": query, "reason": reason,
            "queue_depth": queue_depth, "at_s": at_s,
        }),
        TraceEvent::QueueDepth { depth, at_s } => {
            json!({"event": "queue-depth", "depth": depth, "at_s": at_s})
        }
        TraceEvent::CorruptionDetected {
            rung,
            detector,
            level,
            at_s,
        } => json!({
            "event": "corruption-detected", "rung": rung, "detector": detector,
            "level": level, "at_s": at_s,
        }),
        TraceEvent::CorruptionRepair {
            rung,
            action,
            to_level,
            attempt,
            at_s,
        } => json!({
            "event": "corruption-repair", "rung": rung, "action": action,
            "to_level": to_level, "attempt": attempt, "at_s": at_s,
        }),
        TraceEvent::BatchBegin {
            lanes,
            window,
            at_s,
        } => {
            json!({"event": "batch-begin", "lanes": lanes, "window": window, "at_s": at_s})
        }
        TraceEvent::BatchLane {
            lane,
            query,
            source,
            at_s,
        } => json!({
            "event": "batch-lane", "lane": lane, "query": query, "source": source,
            "at_s": at_s,
        }),
        TraceEvent::BatchLevel {
            device,
            level,
            direction,
            lanes,
            frontier_vertices,
            edges_examined,
            seconds,
            at_s,
        } => json!({
            "event": "batch-level", "device": device, "level": level,
            "direction": dir_label(*direction), "lanes": lanes,
            "frontier_vertices": frontier_vertices, "edges_examined": edges_examined,
            "seconds": seconds, "at_s": at_s,
        }),
        TraceEvent::BatchEnd {
            lanes,
            levels,
            at_s,
        } => {
            json!({"event": "batch-end", "lanes": lanes, "levels": levels, "at_s": at_s})
        }
        TraceEvent::PolicyDecision {
            level,
            bin,
            device,
            direction,
            explore,
            at_s,
        } => json!({
            "event": "policy-decision", "level": level, "bin": bin, "device": device,
            "direction": dir_label(*direction), "explore": explore, "at_s": at_s,
        }),
    }
}

pub(crate) fn write_gauge(out: &mut String, name: &str, help: &str, series: &[(String, f64)]) {
    if series.is_empty() {
        return;
    }
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} gauge\n"));
    for (labels, v) in series {
        out.push_str(&format!("{name}{labels} {}\n", render_value(*v)));
    }
}

/// Render a [`DecisionAudit`] in the Prometheus text exposition format.
///
/// Complements [`prometheus_text`]: where that renders the raw trace, this
/// renders the *judgment* — predicted vs oracle seconds, regret, switch
/// levels, and per-phase simulated-time attribution — as gauge families,
/// so a scrape of both paints the full picture of one run.
pub fn prometheus_audit_text(audit: &DecisionAudit) -> String {
    let mut out = String::new();
    let scalar = |v: f64| vec![(String::new(), v)];
    write_gauge(
        &mut out,
        "xbfs_audit_predicted_seconds",
        "Fault-free simulated seconds of the predicted (M, N) pair.",
        &scalar(audit.predicted_seconds),
    );
    write_gauge(
        &mut out,
        "xbfs_audit_oracle_seconds",
        "Fault-free simulated seconds of the exhaustive-sweep optimum.",
        &scalar(audit.oracle_seconds),
    );
    write_gauge(
        &mut out,
        "xbfs_audit_regret_seconds",
        "Simulated seconds lost to the prediction vs the oracle.",
        &scalar(audit.regret_seconds),
    );
    write_gauge(
        &mut out,
        "xbfs_audit_efficiency_ratio",
        "Predicted TEPS as a fraction of oracle TEPS (1 = optimal).",
        &scalar(audit.efficiency),
    );
    write_gauge(
        &mut out,
        "xbfs_audit_prediction_overhead_fraction",
        "Prediction wall time over prediction plus traversal time.",
        &scalar(audit.prediction_overhead_fraction),
    );
    let mut switches: Vec<(String, f64)> = Vec::new();
    for (kind, level) in [
        ("predicted", audit.predicted_switch_level),
        ("oracle", audit.oracle_switch_level),
        ("realized", audit.realized_switch_level),
    ] {
        if let Some(level) = level {
            switches.push((render_labels(&[("kind", kind)]), level as f64));
        }
    }
    write_gauge(
        &mut out,
        "xbfs_audit_switch_level",
        "First GPU level per decision source (absent when no handoff).",
        &switches,
    );
    let mut params: Vec<(String, f64)> = Vec::new();
    for (kind, p) in [("predicted", &audit.predicted), ("oracle", &audit.oracle)] {
        for (param, v) in [
            ("handoff_m", p.handoff.m),
            ("handoff_n", p.handoff.n),
            ("gpu_m", p.gpu.m),
            ("gpu_n", p.gpu.n),
        ] {
            params.push((render_labels(&[("kind", kind), ("param", param)]), v));
        }
    }
    write_gauge(
        &mut out,
        "xbfs_audit_params",
        "Switch-point parameters of the predicted and oracle pairs.",
        &params,
    );
    let phases: Vec<(String, f64)> = audit
        .phases
        .iter()
        .map(|p| {
            (
                render_labels(&[("phase", &p.phase), ("device", &p.device)]),
                p.seconds,
            )
        })
        .collect();
    write_gauge(
        &mut out,
        "xbfs_audit_phase_seconds",
        "Simulated seconds attributed to each phase/device bucket.",
        &phases,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbfs_engine::trace::RungOutcome;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::RungBegin {
                rung: "cross",
                at_s: 0.0,
            },
            TraceEvent::Transfer {
                level: 2,
                bytes: 4096,
                attempt: 0,
                start_s: 0.001,
                end_s: 0.0015,
                ok: true,
            },
            TraceEvent::Fault {
                op: "gpu-kernel",
                kind: "kernel-timeout",
                level: 2,
                attempt: 0,
                at_s: 0.002,
            },
            TraceEvent::Kernel {
                device: "gpu",
                op: "gpu-kernel",
                level: 2,
                attempt: 1,
                start_s: 0.0025,
                end_s: 0.004,
                ok: true,
            },
            TraceEvent::Level {
                rung: "cross",
                device: "gpu",
                level: 2,
                direction: Direction::BottomUp,
                frontier_vertices: 100,
                frontier_edges: 1000,
                edges_examined: 900,
                discovered: 80,
                start_s: 0.001,
                end_s: 0.004,
            },
            TraceEvent::Breaker {
                device: "gpu",
                from: "closed",
                to: "open",
                cause: "failure-threshold",
                at_s: 0.004,
            },
            TraceEvent::RungEnd {
                rung: "cross",
                at_s: 0.005,
                outcome: RungOutcome::Served,
            },
        ]
    }

    #[test]
    fn chrome_trace_is_valid_json_with_monotone_timestamps() {
        let text = chrome_trace_json(&sample_events());
        let doc: Value = serde_json::from_str(&text).expect("valid JSON");
        assert_eq!(doc["displayTimeUnit"], "ms");
        let evs = doc["traceEvents"].as_array().expect("traceEvents array");
        // Process + five thread metadata records lead the stream.
        assert_eq!(evs[0]["ph"], "M");
        assert_eq!(evs[0]["name"], "process_name");
        let mut last_ts = f64::NEG_INFINITY;
        let mut seen_non_meta = 0;
        for ev in evs {
            if ev["ph"] == "M" {
                continue;
            }
            seen_non_meta += 1;
            let ts = ev["ts"].as_f64().expect("ts is a number");
            assert!(ts >= last_ts, "timestamps must be monotone");
            last_ts = ts;
            if ev["ph"] == "X" {
                assert!(ev["dur"].as_f64().expect("dur") >= 0.0);
            }
        }
        assert_eq!(seen_non_meta, 6, "one record per non-RungBegin event");
    }

    #[test]
    fn chrome_trace_pairs_rung_spans() {
        let text = chrome_trace_json(&sample_events());
        let doc: Value = serde_json::from_str(&text).unwrap();
        let rung = doc["traceEvents"]
            .as_array()
            .unwrap()
            .iter()
            .find(|e| e["name"] == "rung:cross")
            .expect("rung span present");
        assert_eq!(rung["ph"], "X");
        assert_eq!(rung["ts"], 0.0);
        assert_eq!(rung["dur"], 5000.0); // 0.005 s in µs
        assert_eq!(rung["args"]["outcome"], "served");
    }

    #[test]
    fn prometheus_text_aggregates_by_labels() {
        let text = prometheus_text(&sample_events());
        assert!(
            text.contains("xbfs_levels_total{device=\"gpu\",rung=\"cross\",direction=\"bu\"} 1")
        );
        assert!(text.contains(
            "xbfs_level_edges_examined_total{device=\"gpu\",rung=\"cross\",direction=\"bu\"} 900"
        ));
        assert!(text.contains("xbfs_kernel_attempts_total{device=\"gpu\",ok=\"true\"} 1"));
        assert!(text.contains("xbfs_transfer_bytes_total{ok=\"true\"} 4096"));
        assert!(text.contains("xbfs_faults_total{op=\"gpu-kernel\",kind=\"kernel-timeout\"} 1"));
        assert!(text.contains("xbfs_breaker_transitions_total{device=\"gpu\",to=\"open\"} 1"));
        assert!(text.contains("xbfs_rungs_total{rung=\"cross\",outcome=\"served\"} 1"));
        assert!(text.contains("xbfs_level_seconds_bucket{device=\"gpu\",le=\"+Inf\"} 1"));
        assert!(text.contains("xbfs_level_seconds_count{device=\"gpu\"} 1"));
        // A 3 ms level lands in the 0.01 bucket but not the 0.001 bucket.
        assert!(text.contains("xbfs_level_seconds_bucket{device=\"gpu\",le=\"0.001\"} 0"));
        assert!(text.contains("xbfs_level_seconds_bucket{device=\"gpu\",le=\"0.01\"} 1"));
    }

    fn batch_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::BatchBegin {
                lanes: 3,
                window: 8,
                at_s: 0.0,
            },
            TraceEvent::BatchLane {
                lane: 0,
                query: 7,
                source: 42,
                at_s: 0.0,
            },
            TraceEvent::BatchLane {
                lane: 1,
                query: 9,
                source: 43,
                at_s: 0.0,
            },
            TraceEvent::BatchLevel {
                device: "cpu",
                level: 0,
                direction: Direction::TopDown,
                lanes: 3,
                frontier_vertices: 3,
                edges_examined: 48,
                seconds: 0.002,
                at_s: 0.0,
            },
            TraceEvent::BatchLevel {
                device: "gpu",
                level: 1,
                direction: Direction::BottomUp,
                lanes: 3,
                frontier_vertices: 120,
                edges_examined: 900,
                seconds: 0.001,
                at_s: 0.002,
            },
            TraceEvent::BatchEnd {
                lanes: 3,
                levels: 2,
                at_s: 0.003,
            },
        ]
    }

    #[test]
    fn prometheus_text_renders_batch_families() {
        let text = prometheus_text(&batch_events());
        assert!(text.contains("xbfs_batch_dispatches_total 1"));
        assert!(text.contains("xbfs_batch_lanes_total 3"));
        assert!(text.contains("xbfs_batch_lane_queries_total 2"));
        assert!(text.contains("xbfs_batch_levels_total{device=\"cpu\",direction=\"td\"} 1"));
        assert!(text.contains("xbfs_batch_levels_total{device=\"gpu\",direction=\"bu\"} 1"));
        assert!(
            text.contains("xbfs_batch_level_seconds_total{device=\"cpu\",direction=\"td\"} 0.002")
        );
        // No batch events → no batch families at all (scrape stability).
        let plain = prometheus_text(&sample_events());
        assert!(!plain.contains("xbfs_batch_"));
    }

    #[test]
    fn chrome_trace_renders_batch_rounds_and_lane_instants() {
        let text = chrome_trace_json(&batch_events());
        let doc: Value = serde_json::from_str(&text).expect("valid JSON");
        let evs = doc["traceEvents"].as_array().expect("traceEvents array");
        let round = evs
            .iter()
            .find(|e| e["name"] == "batch round 1 bu")
            .expect("batch round span");
        assert_eq!(round["ph"], "X");
        assert_eq!(round["tid"], 2); // gpu track
        assert_eq!(round["dur"], 1000.0); // 0.001 s in µs
        assert_eq!(round["args"]["lanes"], 3);
        let lane = evs
            .iter()
            .find(|e| e["name"] == "lane:1")
            .expect("lane instant");
        assert_eq!(lane["args"]["query"], 9);
        // Lane reconciliation rides the service track, which must now be
        // named; batch-free traces keep omitting it (golden-trace pin).
        assert!(evs
            .iter()
            .any(|e| e["ph"] == "M" && e["args"]["name"] == "service"));
        let plain = chrome_trace_json(&sample_events());
        assert!(!plain.contains("\"service\""));
    }

    /// Strict parser for the label block of one exposition sample line.
    /// Panics on anything the format forbids: unescaped quotes or
    /// newlines, dangling escapes, bad label-name characters.
    fn parse_labels(s: &str) -> Vec<(String, String)> {
        let mut labels = Vec::new();
        let mut chars = s.chars().peekable();
        loop {
            let mut key = String::new();
            while let Some(&c) = chars.peek() {
                if c == '=' {
                    break;
                }
                assert!(
                    c.is_ascii_alphanumeric() || c == '_',
                    "label name charset: {c:?}"
                );
                key.push(c);
                chars.next();
            }
            assert!(!key.is_empty(), "empty label name");
            assert_eq!(chars.next(), Some('='));
            assert_eq!(chars.next(), Some('"'));
            let mut value = String::new();
            loop {
                match chars.next().expect("unterminated label value") {
                    '\\' => match chars.next().expect("dangling escape") {
                        '\\' => value.push('\\'),
                        '"' => value.push('"'),
                        'n' => value.push('\n'),
                        other => panic!("invalid escape sequence \\{other}"),
                    },
                    '"' => break,
                    c => value.push(c),
                }
            }
            labels.push((key, value));
            match chars.next() {
                None => break,
                Some(',') => continue,
                Some(c) => panic!("unexpected {c:?} after a label"),
            }
        }
        labels
    }

    /// One parsed sample line: metric name, label pairs, value.
    type Sample = (String, Vec<(String, String)>, f64);

    /// Strict parser for the whole exposition text: every line must be a
    /// HELP/TYPE comment or a well-formed sample.
    fn parse_exposition(text: &str) -> Vec<Sample> {
        let mut samples = Vec::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# ") {
                assert!(
                    rest.starts_with("HELP ") || rest.starts_with("TYPE "),
                    "unknown comment: {line}"
                );
                continue;
            }
            assert!(!line.is_empty(), "blank line in exposition output");
            let (series, value) = line.rsplit_once(' ').expect("sample has a value");
            let value: f64 = value.parse().expect("sample value parses as f64");
            let (name, labels) = match series.split_once('{') {
                None => (series.to_string(), Vec::new()),
                Some((name, rest)) => {
                    let inner = rest.strip_suffix('}').expect("label set closes");
                    (name.to_string(), parse_labels(inner))
                }
            };
            assert!(
                !name.is_empty()
                    && name
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "metric name charset: {name}"
            );
            samples.push((name, labels, value));
        }
        samples
    }

    #[test]
    fn exposition_round_trips_through_strict_parser() {
        let text = prometheus_text(&sample_events());
        let samples = parse_exposition(&text);
        assert!(!samples.is_empty());
        // Re-rendering every parsed sample reproduces a line of the
        // original text verbatim — parse ∘ render is the identity.
        for (name, labels, value) in samples {
            let pairs: Vec<(&str, &str)> = labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            let line = format!("{name}{} {}", render_labels(&pairs), render_value(value));
            assert!(text.lines().any(|l| l == line), "missing line: {line}");
        }
    }

    #[test]
    fn hostile_label_values_escape_and_parse_back() {
        let hostile = "say \"hi\"\\path\nnext";
        let mut c = Counter::default();
        c.add(&[("op", hostile), ("plain", "ok")], 2.0);
        let mut out = String::new();
        write_counter(&mut out, "xbfs_test_total", "Escaping probe.", &c);
        // The raw control characters must not survive unescaped.
        let sample = out.lines().last().unwrap();
        assert!(!sample.contains('\n'));
        assert!(sample.contains("\\\"hi\\\""));
        assert!(sample.contains("\\\\path"));
        assert!(sample.contains("\\n"));
        // And the strict parser recovers the original value exactly.
        let samples = parse_exposition(&out);
        assert_eq!(samples.len(), 1);
        let (name, labels, value) = &samples[0];
        assert_eq!(name, "xbfs_test_total");
        assert_eq!(labels[0], ("op".to_string(), hostile.to_string()));
        assert_eq!(labels[1], ("plain".to_string(), "ok".to_string()));
        assert_eq!(*value, 2.0);
    }

    /// Admission-layer events with a hostile outcome label: two completed
    /// queries (latencies 0.004 s and 0.199 s), one shed.
    fn service_metric_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::QueryAdmitted {
                query: 1,
                queue_depth: 0,
                at_s: 0.0,
            },
            TraceEvent::QueryStart {
                query: 1,
                wait_s: 0.0,
                at_s: 0.0,
            },
            TraceEvent::QueryAdmitted {
                query: 2,
                queue_depth: 1,
                at_s: 0.001,
            },
            TraceEvent::QueueDepth {
                depth: 1,
                at_s: 0.001,
            },
            TraceEvent::QueryEnd {
                query: 1,
                outcome: "served",
                rung: "cross",
                at_s: 0.004,
            },
            TraceEvent::QueryStart {
                query: 2,
                wait_s: 0.003,
                at_s: 0.004,
            },
            TraceEvent::QueryShed {
                query: 3,
                reason: "overloaded",
                queue_depth: 1,
                at_s: 0.005,
            },
            TraceEvent::QueryEnd {
                query: 2,
                outcome: "failed \"oom\"\\gpu",
                rung: "cpu-only",
                at_s: 0.2,
            },
        ]
    }

    #[test]
    fn service_latency_exposition_round_trips_through_strict_parser() {
        let text = prometheus_text(&service_metric_events());
        let samples = parse_exposition(&text);

        // Admission-to-completion latency renders per outcome, hostile
        // label escaped on the wire and recovered by the parser.
        let buckets: Vec<&Sample> = samples
            .iter()
            .filter(|(n, _, _)| n == "xbfs_service_latency_seconds_bucket")
            .collect();
        assert!(!buckets.is_empty(), "latency histogram missing:\n{text}");
        assert!(
            buckets
                .iter()
                .any(|(_, l, _)| l.iter().any(|(k, v)| k == "outcome" && v == "served")),
            "{text}"
        );
        assert!(
            buckets.iter().any(|(_, l, _)| l
                .iter()
                .any(|(k, v)| k == "outcome" && v == "failed \"oom\"\\gpu")),
            "{text}"
        );
        // 0.004 s first lands in the 0.01 bucket; 0.199 s in the 1 bucket.
        let count_at = |outcome: &str, le: &str| {
            buckets
                .iter()
                .find(|(_, l, _)| {
                    l.iter().any(|(k, v)| k == "outcome" && v == outcome)
                        && l.iter().any(|(k, v)| k == "le" && v == le)
                })
                .map(|(_, _, v)| *v)
                .expect("bucket present")
        };
        assert_eq!(count_at("served", "0.01"), 1.0);
        assert_eq!(count_at("served", "0.001"), 0.0);
        assert_eq!(count_at("failed \"oom\"\\gpu", "0.1"), 0.0);
        assert_eq!(count_at("failed \"oom\"\\gpu", "1"), 1.0);
        assert_eq!(count_at("failed \"oom\"\\gpu", "+Inf"), 1.0);

        // Parse ∘ render is the identity over the whole exposition.
        for (name, labels, value) in &samples {
            let pairs: Vec<(&str, &str)> = labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            let line = format!("{name}{} {}", render_labels(&pairs), render_value(*value));
            assert!(text.lines().any(|l| l == line), "missing line: {line}");
        }
    }

    #[test]
    fn service_latency_buckets_are_cumulative_and_close_at_count() {
        let text = prometheus_text(&service_metric_events());
        let samples = parse_exposition(&text);
        let label_key = |labels: &[(String, String)]| {
            labels
                .iter()
                .filter(|(k, _)| k != "le")
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join(",")
        };
        // Group the latency buckets per outcome and check cumulative
        // monotonicity in `le`, with the +Inf bucket equal to _count.
        let mut per_series: std::collections::BTreeMap<String, Vec<(f64, f64)>> =
            std::collections::BTreeMap::new();
        for (name, labels, value) in &samples {
            if name != "xbfs_service_latency_seconds_bucket" {
                continue;
            }
            let le = labels
                .iter()
                .find(|(k, _)| k == "le")
                .map(|(_, v)| {
                    if v == "+Inf" {
                        f64::INFINITY
                    } else {
                        v.parse().expect("le bound parses")
                    }
                })
                .expect("bucket has le");
            per_series
                .entry(label_key(labels))
                .or_default()
                .push((le, *value));
        }
        assert_eq!(per_series.len(), 2, "one series per outcome");
        for (series, mut buckets) in per_series {
            buckets.sort_by(|a, b| a.0.total_cmp(&b.0));
            assert!(
                buckets.windows(2).all(|w| w[0].1 <= w[1].1),
                "{series}: bucket counts must be cumulative"
            );
            let inf = buckets.last().expect("has +Inf");
            assert!(inf.0.is_infinite());
            let count = samples
                .iter()
                .find(|(n, l, _)| {
                    n == "xbfs_service_latency_seconds_count" && label_key(l) == series
                })
                .map(|(_, _, v)| *v)
                .expect("_count present");
            assert_eq!(inf.1, count, "{series}: +Inf bucket must equal _count");
        }
    }

    #[test]
    fn slo_exposition_round_trips_through_strict_parser() {
        use crate::observe::timeseries::{prometheus_slo_text, SloPolicy, SloReport, WindowBurn};
        let report = SloReport {
            policy: SloPolicy::default(),
            deadline_eligible: 10,
            deadline_missed: 1,
            deadline_hit_ratio: 0.9,
            deadline_met: false,
            latency_eligible: 9,
            latency_missed: 0,
            latency_hit_ratio: 1.0,
            latency_met: true,
            met: false,
            windows: vec![
                WindowBurn {
                    index: 0,
                    start_s: 0.0,
                    end_s: 0.5,
                    deadline_burn: 10.0,
                    latency_burn: 0.0,
                },
                WindowBurn {
                    index: 1,
                    start_s: 0.5,
                    end_s: 1.0,
                    deadline_burn: 0.0,
                    latency_burn: 2.0,
                },
            ],
        };
        let text = prometheus_slo_text(&report);
        let samples = parse_exposition(&text);
        let value_of = |name: &str| {
            samples
                .iter()
                .find(|(n, _, _)| n == name)
                .map(|(_, _, v)| *v)
                .unwrap_or_else(|| panic!("missing {name} in:\n{text}"))
        };
        assert_eq!(value_of("xbfs_slo_deadline_hit_ratio"), 0.9);
        assert_eq!(value_of("xbfs_slo_latency_hit_ratio"), 1.0);
        assert_eq!(value_of("xbfs_slo_met"), 0.0);
        // Burn rates carry objective + window labels, one sample each.
        let burns: Vec<&Sample> = samples
            .iter()
            .filter(|(n, _, _)| n == "xbfs_slo_burn_rate")
            .collect();
        assert_eq!(burns.len(), 4, "two windows x two objectives:\n{text}");
        assert!(burns.iter().any(|(_, l, v)| {
            l.contains(&("objective".to_string(), "deadline".to_string()))
                && l.contains(&("window".to_string(), "0".to_string()))
                && *v == 10.0
        }));
        // Parse ∘ render identity holds for the SLO families too.
        for (name, labels, value) in &samples {
            let pairs: Vec<(&str, &str)> = labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            let line = format!("{name}{} {}", render_labels(&pairs), render_value(*value));
            assert!(text.lines().any(|l| l == line), "missing line: {line}");
        }
    }

    #[test]
    fn audit_exposition_round_trips_through_strict_parser() {
        use crate::audit::{DecisionAudit, PhaseSeconds};
        use crate::cross::CrossParams;
        use xbfs_engine::FixedMN;

        let params = CrossParams {
            handoff: FixedMN { m: 30.0, n: 10.0 },
            gpu: FixedMN { m: 100.0, n: 3.0 },
        };
        let audit = DecisionAudit {
            predicted: params,
            oracle: params,
            predicted_seconds: 0.012,
            oracle_seconds: 0.011,
            efficiency: 0.011 / 0.012,
            regret_seconds: 0.001,
            predicted_switch_level: Some(3),
            oracle_switch_level: Some(2),
            realized_switch_level: None,
            served_rung: "cross".to_string(),
            total_seconds: 0.012,
            prediction_overhead_s: 1e-6,
            prediction_overhead_fraction: 1e-6 / (1e-6 + 0.012),
            levels: vec![],
            phases: vec![PhaseSeconds {
                phase: "kernel".to_string(),
                device: "gpu \"0\"\\primary".to_string(),
                seconds: 0.01,
            }],
        };
        let text = prometheus_audit_text(&audit);
        let samples = parse_exposition(&text);
        assert!(samples
            .iter()
            .any(|(n, _, v)| { n == "xbfs_audit_regret_seconds" && (*v - 0.001).abs() < 1e-12 }));
        // The hostile device label survives the round trip intact.
        let phase = samples
            .iter()
            .find(|(n, _, _)| n == "xbfs_audit_phase_seconds")
            .expect("phase sample present");
        assert!(phase
            .1
            .iter()
            .any(|(k, v)| k == "device" && v == "gpu \"0\"\\primary"));
        // The realized switch level is absent, the other two render.
        let kinds: Vec<&String> = samples
            .iter()
            .filter(|(n, _, _)| n == "xbfs_audit_switch_level")
            .map(|(_, l, _)| &l[0].1)
            .collect();
        assert_eq!(kinds.len(), 2);
        assert!(!kinds.iter().any(|k| *k == "realized"));
    }

    #[test]
    fn empty_trace_renders_empty_exports() {
        let prom = prometheus_text(&[]);
        assert!(prom.is_empty());
        let chrome = chrome_trace_json(&[]);
        let doc: Value = serde_json::from_str(&chrome).unwrap();
        // Only metadata records remain.
        assert!(doc["traceEvents"]
            .as_array()
            .unwrap()
            .iter()
            .all(|e| e["ph"] == "M"));
    }
}
