//! Simulated-clock live telemetry: windowed time-series snapshots,
//! log-bucketed latency quantiles, and SLO evaluation.
//!
//! Everything in this module advances on the *simulated* service clock,
//! never wall time — a [`TimeSeriesRegistry`] fed by a deterministic
//! schedule produces byte-identical snapshots on every replay, which is
//! what lets CI byte-compare two seeded `serve --snapshot-every` runs.
//!
//! The registry is the service's online counterpart to the offline
//! exporters in [`crate::observe`]: instead of rendering one aggregate
//! view after the run, it closes a [`WindowSnapshot`] every
//! [`SnapshotPolicy::every_seconds`] of simulated time, carrying
//! time-weighted queue-depth and in-flight gauges, admit/shed/complete
//! rates, batch occupancy, corruption counters, and p50/p95/p99 readouts
//! of the window's latency and queue-wait histograms. An optional
//! [`SloPolicy`] layers objective targets on top; [`SloReport`] carries
//! the verdict plus a per-window burn rate (observed miss fraction over
//! the allowed miss fraction — burn > 1 means the window spends error
//! budget faster than the objective allows).

use serde_json::{json, Value};
use xbfs_engine::XbfsError;

/// Cadence of time-series snapshots on the simulated clock. The default
/// is off (`every_seconds` 0): no registry state is kept and every
/// existing output stays byte-identical.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SnapshotPolicy {
    /// Simulated seconds per window; `0.0` (or negative) disables
    /// snapshots entirely.
    pub every_seconds: f64,
}

impl Default for SnapshotPolicy {
    fn default() -> Self {
        Self::off()
    }
}

impl SnapshotPolicy {
    /// Snapshots disabled.
    pub fn off() -> Self {
        Self { every_seconds: 0.0 }
    }

    /// A window every `every_seconds` of simulated time.
    pub fn every(every_seconds: f64) -> Self {
        Self { every_seconds }
    }

    /// Whether this policy produces any windows.
    pub fn enabled(&self) -> bool {
        self.every_seconds > 0.0 && self.every_seconds.is_finite()
    }

    /// Validate the cadence (finite, non-negative).
    pub fn validate(&self) -> Result<(), XbfsError> {
        if self.every_seconds < 0.0 || self.every_seconds.is_nan() {
            return Err(XbfsError::InvalidArgument {
                what: format!(
                    "snapshot cadence must be a non-negative number of seconds, got {}",
                    self.every_seconds
                ),
            });
        }
        Ok(())
    }
}

/// A time-weighted gauge accumulator on a monotone simulated clock.
///
/// `set(t, v)` charges the *previous* value for the elapsed interval and
/// installs `v`; `mean(end)` closes the integral at `end` and divides by
/// the observed span. This is the textbook definition of a time-weighted
/// mean: a queue that sits at depth 2 for one second and depth 0 for
/// three seconds averages 0.5, no matter how many transitions occurred.
#[derive(Clone, Copy, Debug)]
pub struct TimeWeighted {
    start_t: f64,
    last_t: f64,
    value: f64,
    area: f64,
    peak: f64,
}

impl TimeWeighted {
    /// A gauge starting at value 0 at time `t0`.
    pub fn new(t0: f64) -> Self {
        Self {
            start_t: t0,
            last_t: t0,
            value: 0.0,
            area: 0.0,
            peak: 0.0,
        }
    }

    /// Install `v` at time `t` (≥ the previous `t`; earlier stamps are
    /// clamped so a same-instant burst of transitions charges nothing).
    pub fn set(&mut self, t: f64, v: f64) {
        let t = t.max(self.last_t);
        self.area += self.value * (t - self.last_t);
        self.last_t = t;
        self.value = v;
        self.peak = self.peak.max(v);
    }

    /// The current gauge value.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// The largest value ever installed.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// The time-weighted mean over `[t0, end]`. An empty or inverted span
    /// returns the current value (a gauge that never had time to
    /// integrate reads as itself).
    pub fn mean(&self, end: f64) -> f64 {
        let end = end.max(self.last_t);
        let span = end - self.start_t;
        if span <= 0.0 {
            return self.value;
        }
        (self.area + self.value * (end - self.last_t)) / span
    }
}

/// Log-spaced (1–2–5 per decade) bucket upper bounds for latency and
/// queue-wait histograms, in seconds: 1 µs up to 100 s.
pub const LATENCY_BUCKETS_S: [f64; 25] = [
    1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2, 1e-1,
    2e-1, 5e-1, 1.0, 2.0, 5.0, 1e1, 2e1, 5e1, 1e2,
];

/// A fixed-bucket log histogram with deterministic quantile readout.
#[derive(Clone, Debug)]
pub struct LogHistogram {
    counts: [u64; LATENCY_BUCKETS_S.len()],
    overflow: u64,
    count: u64,
    sum: f64,
    max: f64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self {
            counts: [0; LATENCY_BUCKETS_S.len()],
            overflow: 0,
            count: 0,
            sum: 0.0,
            max: 0.0,
        }
    }
}

impl LogHistogram {
    /// Fresh empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation (negative values clamp to 0).
    pub fn observe(&mut self, v: f64) {
        let v = v.max(0.0);
        match LATENCY_BUCKETS_S.iter().position(|le| v <= *le) {
            Some(i) => self.counts[i] += 1,
            None => self.overflow += 1,
        }
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// The q-quantile (q in `[0, 1]`), defined deterministically as the
    /// upper bound of the bucket holding the `ceil(q·count)`-th smallest
    /// observation — or the maximum observed value when that rank lands
    /// past the last bucket. An empty histogram has no quantiles and
    /// returns `None`: reporting a bucket bound (or 0) for a window that
    /// observed nothing would fabricate a latency where none was measured.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Some(LATENCY_BUCKETS_S[i]);
            }
        }
        Some(self.max)
    }

    /// The standard p50/p95/p99 readout.
    pub fn summary(&self) -> QuantileSummary {
        QuantileSummary {
            count: self.count,
            sum_s: self.sum,
            p50_s: self.quantile(0.50),
            p95_s: self.quantile(0.95),
            p99_s: self.quantile(0.99),
        }
    }
}

/// The quantile readout of one window's histogram. Quantile fields are
/// `None` when the window observed nothing — an empty window has no
/// latencies, and its JSON omits the keys rather than printing a made-up
/// bucket bound.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct QuantileSummary {
    /// Observations in the window.
    pub count: u64,
    /// Sum of observations, seconds.
    pub sum_s: f64,
    /// Median, per [`LogHistogram::quantile`].
    pub p50_s: Option<f64>,
    /// 95th percentile.
    pub p95_s: Option<f64>,
    /// 99th percentile.
    pub p99_s: Option<f64>,
}

impl QuantileSummary {
    fn to_json(self) -> Value {
        let mut fields = vec![
            ("count".to_string(), json!(self.count)),
            ("sum_s".to_string(), json!(self.sum_s)),
        ];
        if let Some(p) = self.p50_s {
            fields.push(("p50_s".to_string(), json!(p)));
        }
        if let Some(p) = self.p95_s {
            fields.push(("p95_s".to_string(), json!(p)));
        }
        if let Some(p) = self.p99_s {
            fields.push(("p99_s".to_string(), json!(p)));
        }
        Value::Object(fields)
    }
}

/// One closed telemetry window.
#[derive(Clone, Debug)]
pub struct WindowSnapshot {
    /// Zero-based window index.
    pub index: u64,
    /// Window start on the simulated clock.
    pub start_s: f64,
    /// Window end (start of the next window, or the run end for the
    /// final partial window).
    pub end_s: f64,
    /// Time-weighted mean admission-queue depth over the window.
    pub queue_depth_mean: f64,
    /// Deepest the queue got during the window.
    pub queue_depth_peak: u32,
    /// Time-weighted mean of occupied slots over the window.
    pub in_flight_mean: f64,
    /// Most slots occupied at once during the window.
    pub in_flight_peak: u32,
    /// Queries admitted in the window.
    pub admitted: u64,
    /// Queries shed in the window (overload, deadline, shutdown).
    pub shed: u64,
    /// Started queries reaching a terminal outcome in the window.
    pub completed: u64,
    /// Deadline misses in the window: mid-run expiries plus queued
    /// queries shed because their deadline lapsed.
    pub deadline_missed: u64,
    /// The queued-shed portion of `deadline_missed` (queries that never
    /// started; the remainder expired mid-run and also count in
    /// `completed`).
    pub deadline_shed: u64,
    /// Completions whose latency exceeded the SLO latency objective
    /// (always 0 without an [`SloPolicy`]).
    pub latency_slo_missed: u64,
    /// Admissions per simulated second.
    pub admit_rate_hz: f64,
    /// Sheds per simulated second.
    pub shed_rate_hz: f64,
    /// Completions per simulated second.
    pub complete_rate_hz: f64,
    /// Lane-packed batches dispatched in the window.
    pub batch_dispatches: u64,
    /// Lanes carried across those dispatches (occupancy =
    /// `batch_lanes / batch_dispatches`).
    pub batch_lanes: u64,
    /// Corruption detections among the window's completions.
    pub corruption_detected: u64,
    /// Corruption repairs among the window's completions.
    pub corruption_repaired: u64,
    /// Arrival-to-completion latency quantiles over the window.
    pub latency: QuantileSummary,
    /// Queue-wait quantiles over the window's query starts.
    pub queue_wait: QuantileSummary,
}

impl WindowSnapshot {
    /// One deterministic JSON object (for the JSON-lines stream).
    pub fn to_json(&self) -> Value {
        json!({
            "kind": "window",
            "index": self.index,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "queue_depth_mean": self.queue_depth_mean,
            "queue_depth_peak": self.queue_depth_peak,
            "in_flight_mean": self.in_flight_mean,
            "in_flight_peak": self.in_flight_peak,
            "admitted": self.admitted,
            "shed": self.shed,
            "completed": self.completed,
            "deadline_missed": self.deadline_missed,
            "deadline_shed": self.deadline_shed,
            "latency_slo_missed": self.latency_slo_missed,
            "admit_rate_hz": self.admit_rate_hz,
            "shed_rate_hz": self.shed_rate_hz,
            "complete_rate_hz": self.complete_rate_hz,
            "batch_dispatches": self.batch_dispatches,
            "batch_lanes": self.batch_lanes,
            "corruption_detected": self.corruption_detected,
            "corruption_repaired": self.corruption_repaired,
            "latency": self.latency.to_json(),
            "queue_wait": self.queue_wait.to_json(),
        })
    }
}

/// Service-level objectives evaluated over a telemetry run.
///
/// Both ratios are *hit* targets strictly inside `(0, 1)`: a
/// `deadline_hit_ratio` of 0.99 tolerates 1% of deadline-carrying
/// outcomes missing, and the complement `1 - target` is the error budget
/// the per-window burn rate is measured against.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SloPolicy {
    /// Required fraction of deadline-eligible terminal queries (completions
    /// plus queued deadline sheds) that met their deadline.
    pub deadline_hit_ratio: f64,
    /// Latency objective in simulated seconds (arrival → completion).
    pub latency_objective_s: f64,
    /// Required fraction of completions at or under the latency objective.
    pub latency_hit_ratio: f64,
}

impl Default for SloPolicy {
    fn default() -> Self {
        Self {
            deadline_hit_ratio: 0.99,
            latency_objective_s: 0.05,
            latency_hit_ratio: 0.95,
        }
    }
}

impl SloPolicy {
    /// Validate the targets: ratios strictly inside `(0, 1)` (a target of
    /// exactly 1 leaves a zero error budget and an undefined burn rate),
    /// objective positive and finite.
    pub fn validate(&self) -> Result<(), XbfsError> {
        for (name, r) in [
            ("slo deadline hit ratio", self.deadline_hit_ratio),
            ("slo latency hit ratio", self.latency_hit_ratio),
        ] {
            if !(r > 0.0 && r < 1.0) {
                return Err(XbfsError::InvalidArgument {
                    what: format!("{name} must be strictly between 0 and 1, got {r}"),
                });
            }
        }
        if !(self.latency_objective_s > 0.0 && self.latency_objective_s.is_finite()) {
            return Err(XbfsError::InvalidArgument {
                what: format!(
                    "slo latency objective must be a positive number of seconds, got {}",
                    self.latency_objective_s
                ),
            });
        }
        Ok(())
    }
}

/// One window's error-budget burn under an [`SloPolicy`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WindowBurn {
    /// Window index (matches [`WindowSnapshot::index`]).
    pub index: u64,
    /// Window start on the simulated clock.
    pub start_s: f64,
    /// Window end.
    pub end_s: f64,
    /// Deadline-miss fraction over the allowed miss fraction (0 when the
    /// window had no deadline-eligible outcomes).
    pub deadline_burn: f64,
    /// Latency-miss fraction over the allowed miss fraction (0 when the
    /// window had no completions).
    pub latency_burn: f64,
}

/// The SLO verdict over a whole run.
#[derive(Clone, Debug)]
pub struct SloReport {
    /// The policy evaluated.
    pub policy: SloPolicy,
    /// Deadline-eligible terminal queries (completions + queued deadline
    /// sheds).
    pub deadline_eligible: u64,
    /// Of those, deadline misses.
    pub deadline_missed: u64,
    /// `1 - missed/eligible` (1 when nothing was eligible).
    pub deadline_hit_ratio: f64,
    /// Whether the deadline objective held.
    pub deadline_met: bool,
    /// Completions measured against the latency objective.
    pub latency_eligible: u64,
    /// Of those, completions over the objective.
    pub latency_missed: u64,
    /// `1 - missed/eligible` (1 when nothing completed).
    pub latency_hit_ratio: f64,
    /// Whether the latency objective held.
    pub latency_met: bool,
    /// Both objectives held.
    pub met: bool,
    /// Per-window burn rates.
    pub windows: Vec<WindowBurn>,
}

impl SloReport {
    /// Evaluate `policy` over closed windows.
    pub fn evaluate(policy: SloPolicy, snapshots: &[WindowSnapshot]) -> Self {
        let ratio = |missed: u64, eligible: u64| {
            if eligible == 0 {
                1.0
            } else {
                1.0 - missed as f64 / eligible as f64
            }
        };
        let burn = |missed: u64, eligible: u64, target: f64| {
            if eligible == 0 {
                0.0
            } else {
                (missed as f64 / eligible as f64) / (1.0 - target)
            }
        };
        let mut deadline_eligible = 0u64;
        let mut deadline_missed = 0u64;
        let mut latency_eligible = 0u64;
        let mut latency_missed = 0u64;
        let mut windows = Vec::with_capacity(snapshots.len());
        for w in snapshots {
            // Eligible = completions + queued deadline sheds. A mid-run
            // expiry both completes and misses; a queued shed only misses.
            let eligible = w.completed + w.deadline_shed;
            deadline_eligible += eligible;
            deadline_missed += w.deadline_missed;
            latency_eligible += w.completed;
            latency_missed += w.latency_slo_missed;
            windows.push(WindowBurn {
                index: w.index,
                start_s: w.start_s,
                end_s: w.end_s,
                deadline_burn: burn(w.deadline_missed, eligible, policy.deadline_hit_ratio),
                latency_burn: burn(w.latency_slo_missed, w.completed, policy.latency_hit_ratio),
            });
        }
        let deadline_hit_ratio = ratio(deadline_missed, deadline_eligible);
        let latency_hit_ratio = ratio(latency_missed, latency_eligible);
        let deadline_met = deadline_hit_ratio >= policy.deadline_hit_ratio;
        let latency_met = latency_hit_ratio >= policy.latency_hit_ratio;
        Self {
            policy,
            deadline_eligible,
            deadline_missed,
            deadline_hit_ratio,
            deadline_met,
            latency_eligible,
            latency_missed,
            latency_hit_ratio,
            latency_met,
            met: deadline_met && latency_met,
            windows,
        }
    }

    /// One deterministic JSON object (the final JSON-lines record).
    pub fn to_json(&self) -> Value {
        let windows: Vec<Value> = self
            .windows
            .iter()
            .map(|w| {
                json!({
                    "index": w.index,
                    "start_s": w.start_s,
                    "end_s": w.end_s,
                    "deadline_burn": w.deadline_burn,
                    "latency_burn": w.latency_burn,
                })
            })
            .collect();
        json!({
            "kind": "slo",
            "policy": {
                "deadline_hit_ratio": self.policy.deadline_hit_ratio,
                "latency_objective_s": self.policy.latency_objective_s,
                "latency_hit_ratio": self.policy.latency_hit_ratio,
            },
            "deadline_eligible": self.deadline_eligible,
            "deadline_missed": self.deadline_missed,
            "deadline_hit_ratio": self.deadline_hit_ratio,
            "deadline_met": self.deadline_met,
            "latency_eligible": self.latency_eligible,
            "latency_missed": self.latency_missed,
            "latency_hit_ratio": self.latency_hit_ratio,
            "latency_met": self.latency_met,
            "met": self.met,
            "windows": windows,
        })
    }
}

/// Per-window state the registry resets at each boundary.
#[derive(Debug)]
struct WindowState {
    start_s: f64,
    queue: TimeWeighted,
    in_flight: TimeWeighted,
    admitted: u64,
    shed: u64,
    completed: u64,
    deadline_missed: u64,
    deadline_shed: u64,
    latency_slo_missed: u64,
    batch_dispatches: u64,
    batch_lanes: u64,
    corruption_detected: u64,
    corruption_repaired: u64,
    latency: LogHistogram,
    queue_wait: LogHistogram,
}

impl WindowState {
    fn new(start_s: f64, queue_v: f64, in_flight_v: f64) -> Self {
        let mut queue = TimeWeighted::new(start_s);
        queue.set(start_s, queue_v);
        let mut in_flight = TimeWeighted::new(start_s);
        in_flight.set(start_s, in_flight_v);
        Self {
            start_s,
            queue,
            in_flight,
            admitted: 0,
            shed: 0,
            completed: 0,
            deadline_missed: 0,
            deadline_shed: 0,
            latency_slo_missed: 0,
            batch_dispatches: 0,
            batch_lanes: 0,
            corruption_detected: 0,
            corruption_repaired: 0,
            latency: LogHistogram::new(),
            queue_wait: LogHistogram::new(),
        }
    }
}

/// The live time-series registry: feed it service events on a monotone
/// simulated clock, and it closes one [`WindowSnapshot`] per
/// [`SnapshotPolicy`] interval.
#[derive(Debug)]
pub struct TimeSeriesRegistry {
    policy: SnapshotPolicy,
    slo: Option<SloPolicy>,
    window: WindowState,
    snapshots: Vec<WindowSnapshot>,
    finished: bool,
}

impl TimeSeriesRegistry {
    /// A registry on `policy`, optionally evaluating `slo` at the end.
    pub fn new(policy: SnapshotPolicy, slo: Option<SloPolicy>) -> Self {
        Self {
            policy,
            slo,
            window: WindowState::new(0.0, 0.0, 0.0),
            snapshots: Vec::new(),
            finished: false,
        }
    }

    /// Close every window boundary at or before `t`.
    pub fn advance(&mut self, t: f64) {
        if !self.policy.enabled() {
            return;
        }
        let every = self.policy.every_seconds;
        while t >= self.window.start_s + every {
            let end = self.window.start_s + every;
            self.close_window(end, every);
        }
    }

    /// Close the window ending at `end` spanning `span` seconds and open
    /// the next one, carrying the gauges across the boundary.
    fn close_window(&mut self, end: f64, span: f64) {
        let rate = |n: u64| if span > 0.0 { n as f64 / span } else { 0.0 };
        let w = &mut self.window;
        w.queue.set(end, w.queue.value());
        w.in_flight.set(end, w.in_flight.value());
        self.snapshots.push(WindowSnapshot {
            index: self.snapshots.len() as u64,
            start_s: w.start_s,
            end_s: end,
            queue_depth_mean: w.queue.mean(end),
            queue_depth_peak: w.queue.peak() as u32,
            in_flight_mean: w.in_flight.mean(end),
            in_flight_peak: w.in_flight.peak() as u32,
            admitted: w.admitted,
            shed: w.shed,
            completed: w.completed,
            deadline_missed: w.deadline_missed,
            deadline_shed: w.deadline_shed,
            latency_slo_missed: w.latency_slo_missed,
            admit_rate_hz: rate(w.admitted),
            shed_rate_hz: rate(w.shed),
            complete_rate_hz: rate(w.completed),
            batch_dispatches: w.batch_dispatches,
            batch_lanes: w.batch_lanes,
            corruption_detected: w.corruption_detected,
            corruption_repaired: w.corruption_repaired,
            latency: w.latency.summary(),
            queue_wait: w.queue_wait.summary(),
        });
        let (qv, fv) = (w.queue.value(), w.in_flight.value());
        self.window = WindowState::new(end, qv, fv);
    }

    /// A query was admitted at `t`.
    pub fn record_admit(&mut self, t: f64) {
        self.advance(t);
        self.window.admitted += 1;
    }

    /// A query was shed at `t`; `deadline` marks a queued deadline lapse.
    pub fn record_shed(&mut self, t: f64, deadline: bool) {
        self.advance(t);
        self.window.shed += 1;
        if deadline {
            self.window.deadline_missed += 1;
            self.window.deadline_shed += 1;
        }
    }

    /// The admission queue transitioned to `depth` at `t`.
    pub fn record_queue_depth(&mut self, t: f64, depth: u32) {
        self.advance(t);
        self.window.queue.set(t, f64::from(depth));
    }

    /// The occupied-slot count transitioned to `n` at `t`.
    pub fn record_in_flight(&mut self, t: f64, n: u32) {
        self.advance(t);
        self.window.in_flight.set(t, f64::from(n));
    }

    /// A query started at `t` after waiting `wait_s` in the queue.
    pub fn record_start(&mut self, t: f64, wait_s: f64) {
        self.advance(t);
        self.window.queue_wait.observe(wait_s);
    }

    /// A started query reached a terminal outcome at `t` with
    /// arrival-to-completion `latency_s`; `deadline_missed` marks mid-run
    /// deadline expiry.
    pub fn record_complete(&mut self, t: f64, latency_s: f64, deadline_missed: bool) {
        self.advance(t);
        self.window.completed += 1;
        if deadline_missed {
            self.window.deadline_missed += 1;
        }
        self.window.latency.observe(latency_s);
        if let Some(slo) = &self.slo {
            if latency_s > slo.latency_objective_s {
                self.window.latency_slo_missed += 1;
            }
        }
    }

    /// A lane-packed batch with `lanes` lanes dispatched at `t`.
    pub fn record_batch(&mut self, t: f64, lanes: u32) {
        self.advance(t);
        self.window.batch_dispatches += 1;
        self.window.batch_lanes += u64::from(lanes);
    }

    /// A completed query reported corruption counters at `t`.
    pub fn record_corruption(&mut self, t: f64, detected: u32, repaired: u32) {
        self.advance(t);
        self.window.corruption_detected += u64::from(detected);
        self.window.corruption_repaired += u64::from(repaired);
    }

    /// Close the final (partial) window at `t_end`. Idempotent.
    pub fn finish(&mut self, t_end: f64) {
        if self.finished || !self.policy.enabled() {
            self.finished = true;
            return;
        }
        self.advance(t_end);
        let span = t_end - self.window.start_s;
        if span > 0.0 {
            self.close_window(t_end, span);
        }
        self.finished = true;
    }

    /// The closed windows so far.
    pub fn snapshots(&self) -> &[WindowSnapshot] {
        &self.snapshots
    }

    /// Take the closed windows out of the registry.
    pub fn into_snapshots(self) -> Vec<WindowSnapshot> {
        self.snapshots
    }

    /// Evaluate the configured SLO over the closed windows (None when no
    /// policy was configured).
    pub fn slo_report(&self) -> Option<SloReport> {
        self.slo.map(|p| SloReport::evaluate(p, &self.snapshots))
    }
}

/// Render windows (and the SLO verdict, when present) as a JSON-lines
/// stream: one compact object per line, windows first, the `"kind":
/// "slo"` record last. Deterministic for a given run.
pub fn timeseries_json_lines(snapshots: &[WindowSnapshot], slo: Option<&SloReport>) -> String {
    let mut out = String::new();
    for w in snapshots {
        out.push_str(&serde_json::to_string(&w.to_json()).expect("window serializes"));
        out.push('\n');
    }
    if let Some(slo) = slo {
        out.push_str(&serde_json::to_string(&slo.to_json()).expect("slo serializes"));
        out.push('\n');
    }
    out
}

/// Render an [`SloReport`] in the Prometheus text exposition format: the
/// `xbfs_slo_*` families (targets, hit ratios, per-window burn rates,
/// and the 0/1 verdict).
pub fn prometheus_slo_text(report: &SloReport) -> String {
    use super::{render_labels, write_gauge};
    let mut out = String::new();
    let scalar = |v: f64| vec![(String::new(), v)];
    let flag = |b: bool| if b { 1.0 } else { 0.0 };
    write_gauge(
        &mut out,
        "xbfs_slo_deadline_target",
        "Required deadline hit ratio.",
        &scalar(report.policy.deadline_hit_ratio),
    );
    write_gauge(
        &mut out,
        "xbfs_slo_deadline_hit_ratio",
        "Observed deadline hit ratio over the run.",
        &scalar(report.deadline_hit_ratio),
    );
    write_gauge(
        &mut out,
        "xbfs_slo_latency_objective_seconds",
        "Latency objective, simulated seconds arrival to completion.",
        &scalar(report.policy.latency_objective_s),
    );
    write_gauge(
        &mut out,
        "xbfs_slo_latency_target",
        "Required fraction of completions under the latency objective.",
        &scalar(report.policy.latency_hit_ratio),
    );
    write_gauge(
        &mut out,
        "xbfs_slo_latency_hit_ratio",
        "Observed fraction of completions under the latency objective.",
        &scalar(report.latency_hit_ratio),
    );
    let mut burns: Vec<(String, f64)> = Vec::new();
    for w in &report.windows {
        let win = w.index.to_string();
        burns.push((
            render_labels(&[("objective", "deadline"), ("window", &win)]),
            w.deadline_burn,
        ));
        burns.push((
            render_labels(&[("objective", "latency"), ("window", &win)]),
            w.latency_burn,
        ));
    }
    write_gauge(
        &mut out,
        "xbfs_slo_burn_rate",
        "Per-window error-budget burn (miss fraction over allowance).",
        &burns,
    );
    write_gauge(
        &mut out,
        "xbfs_slo_met",
        "1 when every objective held over the run, else 0.",
        &scalar(flag(report.met)),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_weighted_mean_matches_hand_computed_schedule() {
        // Depth 0 on [0,1), 2 on [1,3), 1 on [3,4), 0 on [4,5]:
        // area = 0·1 + 2·2 + 1·1 + 0·1 = 5 over span 5 → mean 1.0.
        let mut g = TimeWeighted::new(0.0);
        g.set(1.0, 2.0);
        g.set(3.0, 1.0);
        g.set(4.0, 0.0);
        assert_eq!(g.mean(5.0), 1.0);
        assert_eq!(g.peak(), 2.0);
        // Closing earlier weighs only the elapsed part: over [0,3] the
        // area is 0·1 + 2·2 = 4 → mean 4/3.
        let mut g = TimeWeighted::new(0.0);
        g.set(1.0, 2.0);
        assert!((g.mean(3.0) - 4.0 / 3.0).abs() < 1e-12);
        // A same-instant burst charges nothing.
        let mut g = TimeWeighted::new(0.0);
        g.set(0.0, 5.0);
        g.set(0.0, 1.0);
        g.set(2.0, 0.0);
        assert_eq!(
            g.mean(2.0),
            1.0,
            "only the last same-instant value integrates"
        );
        assert_eq!(g.peak(), 5.0, "peak still sees the burst");
        // An empty span reads the current value.
        let g = TimeWeighted::new(1.0);
        assert_eq!(g.mean(1.0), 0.0);
    }

    #[test]
    fn log_histogram_quantiles_match_hand_computed_ranks() {
        let mut h = LogHistogram::new();
        // Ten observations: eight at 3 ms (bucket le=0.005), one at
        // 40 ms (le=0.05), one at 300 ms (le=0.5).
        for _ in 0..8 {
            h.observe(3e-3);
        }
        h.observe(4e-2);
        h.observe(3e-1);
        assert_eq!(h.count(), 10);
        // p50: rank ceil(0.5·10)=5 → inside the first bucket → 0.005.
        assert_eq!(h.quantile(0.50), Some(5e-3));
        // p80: rank 8 → still the first bucket (cum 8 ≥ 8).
        assert_eq!(h.quantile(0.80), Some(5e-3));
        // p90: rank 9 → the 40 ms bucket.
        assert_eq!(h.quantile(0.90), Some(5e-2));
        // p99: rank ceil(9.9)=10 → the 300 ms bucket.
        assert_eq!(h.quantile(0.99), Some(5e-1));
        let s = h.summary();
        assert_eq!(s.p50_s, Some(5e-3));
        // p95: rank ceil(9.5)=10 → also the 300 ms bucket.
        assert_eq!(s.p95_s, Some(5e-1));
        assert_eq!(s.p99_s, Some(5e-1));
        assert!((s.sum_s - (8.0 * 3e-3 + 4e-2 + 3e-1)).abs() < 1e-12);
    }

    #[test]
    fn log_histogram_edges() {
        let h = LogHistogram::new();
        assert_eq!(h.quantile(0.5), None, "an empty histogram has no quantiles");
        assert_eq!(h.quantile(0.99), None);
        let s = h.summary();
        assert_eq!((s.p50_s, s.p95_s, s.p99_s), (None, None, None));
        let json = s.to_json();
        let obj = json.as_object().expect("summary is an object");
        assert!(
            obj.iter().all(|(k, _)| k == "count" || k == "sum_s"),
            "empty summary must omit quantile keys, got {obj:?}"
        );
        let mut h = LogHistogram::new();
        h.observe(1e9); // beyond the last bucket
        h.observe(2e9);
        assert_eq!(h.quantile(0.99), Some(2e9), "overflow ranks read the max");
        let mut h = LogHistogram::new();
        h.observe(-1.0); // clamps to 0 → first bucket
        assert_eq!(h.quantile(0.5), Some(LATENCY_BUCKETS_S[0]));
    }

    #[test]
    fn registry_closes_windows_on_the_simulated_clock() {
        let mut r = TimeSeriesRegistry::new(SnapshotPolicy::every(1.0), None);
        // Window 0: two admits, queue to depth 2 at t=0.5.
        r.record_admit(0.1);
        r.record_admit(0.2);
        r.record_queue_depth(0.5, 2);
        r.record_start(0.6, 0.4);
        // Window 1: one completion at t=1.5, queue drains at 1.5.
        r.record_complete(1.5, 0.25, false);
        r.record_queue_depth(1.5, 0);
        // Partial window 2 ends at finish(2.5).
        r.record_admit(2.25);
        r.finish(2.5);

        let w = r.snapshots();
        assert_eq!(w.len(), 3);
        assert_eq!((w[0].start_s, w[0].end_s), (0.0, 1.0));
        assert_eq!(w[0].admitted, 2);
        assert_eq!(w[0].admit_rate_hz, 2.0);
        // Queue: 0 on [0,0.5), 2 on [0.5,1) → mean 1.0, peak 2.
        assert_eq!(w[0].queue_depth_mean, 1.0);
        assert_eq!(w[0].queue_depth_peak, 2);
        assert_eq!(w[0].queue_wait.count, 1);

        // The gauge carries across the boundary: depth 2 on [1,1.5).
        assert_eq!(w[1].queue_depth_mean, 1.0);
        assert_eq!(w[1].completed, 1);
        assert_eq!(w[1].complete_rate_hz, 1.0);
        assert_eq!(w[1].latency.count, 1);

        // The final partial window spans [2, 2.5): rate uses the real span.
        assert_eq!((w[2].start_s, w[2].end_s), (2.0, 2.5));
        assert_eq!(w[2].admitted, 1);
        assert_eq!(w[2].admit_rate_hz, 2.0);

        // finish() is idempotent.
        let n = r.snapshots().len();
        r.finish(9.0);
        assert_eq!(r.snapshots().len(), n);
    }

    #[test]
    fn disabled_policy_produces_no_windows() {
        let mut r = TimeSeriesRegistry::new(SnapshotPolicy::off(), None);
        r.record_admit(0.5);
        r.record_complete(1.5, 0.1, false);
        r.finish(2.0);
        assert!(r.snapshots().is_empty());
        assert!(r.slo_report().is_none());
    }

    #[test]
    fn slo_report_computes_ratios_and_burn() {
        let policy = SloPolicy {
            deadline_hit_ratio: 0.9,
            latency_objective_s: 0.01,
            latency_hit_ratio: 0.8,
        };
        let mut r = TimeSeriesRegistry::new(SnapshotPolicy::every(1.0), Some(policy));
        // Window 0: four completions, one misses its deadline, one (the
        // same event) is also over the 10 ms latency objective.
        r.record_complete(0.1, 0.001, false);
        r.record_complete(0.2, 0.002, false);
        r.record_complete(0.3, 0.005, false);
        r.record_complete(0.4, 0.5, true);
        // Window 1: one queued deadline shed, one clean completion.
        r.record_shed(1.2, true);
        r.record_complete(1.5, 0.004, false);
        r.finish(2.0);

        let slo = r.slo_report().expect("slo configured");
        // Deadline: eligible = 4 completions + (1 completion + 1 shed) = 6,
        // missed = 2 → hit ratio 4/6.
        assert_eq!(slo.deadline_eligible, 6);
        assert_eq!(slo.deadline_missed, 2);
        assert!((slo.deadline_hit_ratio - 4.0 / 6.0).abs() < 1e-12);
        assert!(!slo.deadline_met);
        // Latency: 5 completions, 1 over objective → 0.8 ≥ 0.8 target.
        assert_eq!(slo.latency_eligible, 5);
        assert_eq!(slo.latency_missed, 1);
        assert!((slo.latency_hit_ratio - 0.8).abs() < 1e-12);
        assert!(slo.latency_met);
        assert!(!slo.met);
        // Window 0 burn: deadline 1/4 miss over 0.1 allowance = 2.5×;
        // latency 1/4 over 0.2 allowance = 1.25×.
        assert_eq!(slo.windows.len(), 2);
        assert!((slo.windows[0].deadline_burn - 2.5).abs() < 1e-12);
        assert!((slo.windows[0].latency_burn - 1.25).abs() < 1e-12);
        // Window 1: 1 shed miss over 2 eligible / 0.1 = 5×; latency clean.
        assert!((slo.windows[1].deadline_burn - 5.0).abs() < 1e-12);
        assert_eq!(slo.windows[1].latency_burn, 0.0);
    }

    #[test]
    fn slo_policy_validates_targets() {
        assert!(SloPolicy::default().validate().is_ok());
        for bad in [0.0, 1.0, -0.5, f64::NAN] {
            let p = SloPolicy {
                deadline_hit_ratio: bad,
                ..SloPolicy::default()
            };
            assert!(p.validate().is_err(), "deadline ratio {bad} must fail");
        }
        let p = SloPolicy {
            latency_objective_s: 0.0,
            ..SloPolicy::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn json_lines_are_one_object_per_line_windows_then_slo() {
        let policy = SloPolicy::default();
        let mut r = TimeSeriesRegistry::new(SnapshotPolicy::every(1.0), Some(policy));
        r.record_complete(0.5, 0.001, false);
        r.finish(1.5);
        let slo = r.slo_report();
        let text = timeseries_json_lines(r.snapshots(), slo.as_ref());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for (i, line) in lines.iter().enumerate() {
            let v: Value = serde_json::from_str(line).expect("line parses");
            let expected = if i < 2 { "window" } else { "slo" };
            assert_eq!(v["kind"], expected, "line {i}");
        }
        // Rendering twice is byte-identical.
        assert_eq!(text, timeseries_json_lines(r.snapshots(), slo.as_ref()));
    }

    #[test]
    fn prometheus_slo_text_renders_all_families() {
        let mut r = TimeSeriesRegistry::new(
            SnapshotPolicy::every(1.0),
            Some(SloPolicy {
                deadline_hit_ratio: 0.9,
                latency_objective_s: 0.01,
                latency_hit_ratio: 0.8,
            }),
        );
        r.record_complete(0.5, 0.5, true);
        r.record_complete(1.5, 0.001, false);
        r.finish(2.0);
        let slo = r.slo_report().unwrap();
        let text = prometheus_slo_text(&slo);
        assert!(text.contains("xbfs_slo_deadline_target 0.9"));
        assert!(text.contains("xbfs_slo_deadline_hit_ratio 0.5"));
        assert!(text.contains("xbfs_slo_latency_objective_seconds 0.01"));
        assert!(text.contains("xbfs_slo_burn_rate{objective=\"deadline\",window=\"0\"} 10"));
        assert!(text.contains("xbfs_slo_burn_rate{objective=\"latency\",window=\"1\"} 0"));
        assert!(text.contains("xbfs_slo_met 0"));
    }
}
