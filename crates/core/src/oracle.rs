//! Exhaustive switch-point search — the paper's `hybrid-oracle` labeling
//! step (Fig. 6, step 1) and Table III generator.
//!
//! Thanks to the direction-independent [`TraversalProfile`], evaluating one
//! `(M, N)` candidate is O(depth), so the paper's "1,000 possible cases"
//! cost microseconds here instead of a thousand BFS runs.

use crate::cross::{cost_cross, CrossParams};
use serde::{Deserialize, Serialize};
use xbfs_archsim::{cost_fixed_mn, ArchSpec, Link, TraversalProfile};
use xbfs_engine::FixedMN;

/// A candidate grid over `(M, N)`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MnGrid {
    /// Candidate `M` values.
    pub ms: Vec<f64>,
    /// Candidate `N` values.
    pub ns: Vec<f64>,
}

impl MnGrid {
    /// Build from explicit candidate lists.
    ///
    /// # Panics
    /// Panics if either list is empty or contains non-positive values.
    pub fn new(ms: Vec<f64>, ns: Vec<f64>) -> Self {
        assert!(!ms.is_empty() && !ns.is_empty(), "grid must be non-empty");
        assert!(
            ms.iter().chain(&ns).all(|&v| v > 0.0),
            "M and N candidates must be positive"
        );
        Self { ms, ns }
    }

    /// The paper's extended search range: `M ∈ [1, 300]` (§III-C extends
    /// Beamer's `[1, 30]` to `[1, 300]`) × `N ∈ [1, 100]`, subsampled to
    /// roughly 1,000 combinations (Fig. 8's "1,000 possible cases").
    pub fn paper_1000() -> Self {
        let ms: Vec<f64> = (1..=300).step_by(6).map(|m| m as f64).collect(); // 50
        let ns: Vec<f64> = (1..=100).step_by(5).map(|n| n as f64).collect(); // 20
        Self::new(ms, ns)
    }

    /// A small grid for unit tests.
    pub fn coarse() -> Self {
        let ms = vec![1.0, 4.0, 16.0, 64.0, 256.0];
        let ns = vec![1.0, 8.0, 32.0, 128.0];
        Self::new(ms, ns)
    }

    /// Number of `(M, N)` combinations.
    pub fn len(&self) -> usize {
        self.ms.len() * self.ns.len()
    }

    /// `true` if the grid is empty (impossible by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate all combinations.
    pub fn iter(&self) -> impl Iterator<Item = FixedMN> + '_ {
        self.ms
            .iter()
            .flat_map(move |&m| self.ns.iter().map(move |&n| FixedMN { m, n }))
    }
}

/// One evaluated candidate.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    /// The switching parameters.
    pub mn: FixedMN,
    /// Simulated traversal seconds with these parameters.
    pub seconds: f64,
}

/// Evaluate every grid point of a *single-architecture* combination.
pub fn sweep_single(profile: &TraversalProfile, arch: &ArchSpec, grid: &MnGrid) -> Vec<Candidate> {
    grid.iter()
        .map(|mn| Candidate {
            mn,
            seconds: cost_fixed_mn(profile, arch, mn),
        })
        .collect()
}

/// [`sweep_single`] distributed over `threads` host threads — the offline
/// training pipeline's hot loop (140 samples × 1,000 candidates each). The
/// result order matches the sequential sweep exactly.
pub fn sweep_single_parallel(
    profile: &TraversalProfile,
    arch: &ArchSpec,
    grid: &MnGrid,
    threads: usize,
) -> Vec<Candidate> {
    let points: Vec<FixedMN> = grid.iter().collect();
    let chunks = xbfs_engine::par::parallel_ranges(points.len(), threads, |range| {
        points[range]
            .iter()
            .map(|&mn| Candidate {
                mn,
                seconds: cost_fixed_mn(profile, arch, mn),
            })
            .collect::<Vec<_>>()
    });
    chunks.into_iter().flatten().collect()
}

/// Evaluate every grid point of the *cross-architecture* handoff `(M1, N1)`
/// with the GPU-internal `(M2, N2)` held fixed.
pub fn sweep_cross(
    profile: &TraversalProfile,
    cpu: &ArchSpec,
    gpu: &ArchSpec,
    link: &Link,
    gpu_mn: FixedMN,
    grid: &MnGrid,
) -> Vec<Candidate> {
    grid.iter()
        .map(|mn| {
            let params = CrossParams {
                handoff: mn,
                gpu: gpu_mn,
            };
            Candidate {
                mn,
                seconds: cost_cross(profile, cpu, gpu, link, &params).total_seconds,
            }
        })
        .collect()
}

/// One evaluated cross-architecture candidate (all four parameters).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CrossCandidate {
    /// The handoff and GPU-internal parameters.
    pub params: CrossParams,
    /// Simulated traversal seconds.
    pub seconds: f64,
}

/// The Fig. 8 candidate space for the cross-architecture combination: the
/// handoff `(M1, N1)` and GPU-internal `(M2, N2)` vary *independently* over
/// the two grids, so the space contains the catastrophic corners — e.g.
/// "never hand off" (the huge middle levels crawl through CPU top-down) or
/// "hand off but never switch to bottom-up" (a weak GPU thread serializes
/// on every hub) — that give the paper its 695×-scale worst-to-best spread.
pub fn sweep_cross_pairs(
    profile: &TraversalProfile,
    cpu: &ArchSpec,
    gpu: &ArchSpec,
    link: &Link,
    handoff_grid: &MnGrid,
    gpu_grid: &MnGrid,
) -> Vec<CrossCandidate> {
    handoff_grid
        .iter()
        .flat_map(|handoff| {
            gpu_grid.iter().map(move |gpu_mn| CrossParams {
                handoff,
                gpu: gpu_mn,
            })
        })
        .map(|params| CrossCandidate {
            params,
            seconds: cost_cross(profile, cpu, gpu, link, &params).total_seconds,
        })
        .collect()
}

/// The per-side grid for [`sweep_cross_pairs`]: 6 × 5 points per side, so
/// the pair space holds 900 candidates — the paper's "1,000 possible
/// cases" for the four-parameter cross-architecture switch.
pub fn cross_pair_grid() -> MnGrid {
    MnGrid::new(
        vec![1.0, 3.0, 10.0, 30.0, 100.0, 300.0],
        vec![1.0, 3.0, 10.0, 30.0, 100.0],
    )
}

/// The best (minimum-time) candidate of a sweep.
///
/// # Panics
/// Panics on an empty sweep.
pub fn best(candidates: &[Candidate]) -> Candidate {
    *candidates
        .iter()
        .min_by(|a, b| a.seconds.total_cmp(&b.seconds))
        .expect("empty candidate sweep")
}

/// The worst (maximum-time) candidate of a sweep.
///
/// # Panics
/// Panics on an empty sweep.
pub fn worst(candidates: &[Candidate]) -> Candidate {
    *candidates
        .iter()
        .max_by(|a, b| a.seconds.total_cmp(&b.seconds))
        .expect("empty candidate sweep")
}

/// Arithmetic mean traversal time over a sweep (the paper's `Average` bar).
pub fn mean_seconds(candidates: &[Candidate]) -> f64 {
    if candidates.is_empty() {
        return 0.0;
    }
    candidates.iter().map(|c| c.seconds).sum::<f64>() / candidates.len() as f64
}

/// Best single-architecture `(M, N)` for this traversal.
pub fn best_mn_single(profile: &TraversalProfile, arch: &ArchSpec, grid: &MnGrid) -> Candidate {
    best(&sweep_single(profile, arch, grid))
}

/// The best (minimum-time) cross candidate of a pair sweep.
///
/// # Panics
/// Panics on an empty sweep.
pub fn best_cross(candidates: &[CrossCandidate]) -> CrossCandidate {
    *candidates
        .iter()
        .min_by(|a, b| a.seconds.total_cmp(&b.seconds))
        .expect("empty candidate sweep")
}

/// The worst (maximum-time) cross candidate of a pair sweep.
///
/// # Panics
/// Panics on an empty sweep.
pub fn worst_cross(candidates: &[CrossCandidate]) -> CrossCandidate {
    *candidates
        .iter()
        .max_by(|a, b| a.seconds.total_cmp(&b.seconds))
        .expect("empty candidate sweep")
}

/// Arithmetic mean traversal time over a cross pair sweep.
pub fn mean_seconds_cross(candidates: &[CrossCandidate]) -> f64 {
    if candidates.is_empty() {
        return 0.0;
    }
    candidates.iter().map(|c| c.seconds).sum::<f64>() / candidates.len() as f64
}

/// Best cross-architecture handoff `(M1, N1)` given `gpu_mn`.
pub fn best_mn_cross(
    profile: &TraversalProfile,
    cpu: &ArchSpec,
    gpu: &ArchSpec,
    link: &Link,
    gpu_mn: FixedMN,
    grid: &MnGrid,
) -> Candidate {
    best(&sweep_cross(profile, cpu, gpu, link, gpu_mn, grid))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbfs_archsim::profile;

    fn small_profile() -> TraversalProfile {
        let g = xbfs_graph::rmat::rmat_csr(12, 16);
        profile(&g, 0)
    }

    #[test]
    fn grid_shapes() {
        let g = MnGrid::paper_1000();
        assert_eq!(g.len(), 1000);
        assert!(!g.is_empty());
        assert_eq!(g.iter().count(), 1000);
        let c = MnGrid::coarse();
        assert_eq!(c.len(), 20);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn grid_rejects_empty() {
        MnGrid::new(vec![], vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn grid_rejects_nonpositive() {
        MnGrid::new(vec![0.0], vec![1.0]);
    }

    #[test]
    fn best_is_min_worst_is_max() {
        let p = small_profile();
        let cpu = ArchSpec::cpu_sandy_bridge();
        let sweep = sweep_single(&p, &cpu, &MnGrid::coarse());
        let b = best(&sweep);
        let w = worst(&sweep);
        assert!(sweep.iter().all(|c| c.seconds >= b.seconds));
        assert!(sweep.iter().all(|c| c.seconds <= w.seconds));
        let mean = mean_seconds(&sweep);
        assert!(b.seconds <= mean && mean <= w.seconds);
    }

    #[test]
    fn sweep_evaluates_whole_grid() {
        let p = small_profile();
        let gpu = ArchSpec::gpu_k20x();
        let grid = MnGrid::coarse();
        let sweep = sweep_single(&p, &gpu, &grid);
        assert_eq!(sweep.len(), grid.len());
        assert!(sweep
            .iter()
            .all(|c| c.seconds.is_finite() && c.seconds > 0.0));
    }

    #[test]
    fn best_mn_beats_pure_on_gpu_scale_free() {
        // The GPU's sweep must find a combination strictly better than the
        // all-TD and all-BU corners (which the grid contains at M=N=1 → BU
        // everywhere... hence compare against explicit pure costs).
        use xbfs_archsim::cost_fixed_mn;
        let g = xbfs_graph::rmat::rmat_csr(14, 16);
        let src = xbfs_graph::stats::max_degree_vertex(&g).unwrap().0;
        let p = profile(&g, src);
        let gpu = ArchSpec::gpu_k20x();
        let b = best_mn_single(&p, &gpu, &MnGrid::paper_1000());
        let pure_td = cost_fixed_mn(&p, &gpu, xbfs_engine::FixedMN::new(1e-6, 1e-6));
        let pure_bu = cost_fixed_mn(&p, &gpu, xbfs_engine::FixedMN::new(1e9, 1e9));
        assert!(b.seconds <= pure_td && b.seconds <= pure_bu);
    }

    #[test]
    fn mean_of_empty_sweep_is_zero() {
        assert_eq!(mean_seconds(&[]), 0.0);
    }

    #[test]
    fn parallel_sweep_matches_sequential() {
        let p = small_profile();
        let cpu = ArchSpec::cpu_sandy_bridge();
        let grid = MnGrid::paper_1000();
        let seq = sweep_single(&p, &cpu, &grid);
        for threads in [1, 3, 8] {
            let par = sweep_single_parallel(&p, &cpu, &grid, threads);
            assert_eq!(seq.len(), par.len());
            for (a, b) in seq.iter().zip(&par) {
                assert_eq!(a.mn, b.mn);
                assert_eq!(a.seconds, b.seconds);
            }
        }
    }
}
