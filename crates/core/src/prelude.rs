//! One-line import for the common way in: `use xbfs_core::prelude::*;`.
//!
//! Re-exports the [`RunSession`] entry point with everything needed to
//! configure it (resilience, checkpoints, fault plans, trace sinks), the
//! result types it produces, and the exporters that turn a recorded trace
//! into chrome://tracing JSON or Prometheus text.

pub use crate::audit::{decision_audit, DecisionAudit, LevelAttribution, PhaseSeconds};
pub use crate::checkpoint::{CheckpointPolicy, LevelCheckpoint, Residency};
pub use crate::cross::CrossParams;
pub use crate::health::{BreakerPolicy, BreakerState, BreakerTransition, Device};
pub use crate::observe::timeseries::{
    prometheus_slo_text, timeseries_json_lines, LogHistogram, QuantileSummary, SloPolicy,
    SloReport, SnapshotPolicy, TimeSeriesRegistry, TimeWeighted, WindowSnapshot,
};
pub use crate::observe::{
    chrome_trace_json, prometheus_audit_text, prometheus_text, service_chrome_trace_json,
    trace_event_json,
};
pub use crate::recovery::{
    RecoveredRun, ResilienceConfig, ResumeRecord, RetryPolicy, RunReport, Rung,
};
pub use crate::runtime::AdaptiveRuntime;
pub use crate::service::{
    BatchCompat, BatchPolicy, Disposition, DrainMode, PostMortem, QueryRequest,
    QueryRequestBuilder, QueryService, ScheduleItem, ServiceConfig, ServiceReport,
    TraceSamplePolicy,
};
pub use crate::session::{BatchRun, BatchSession, LaneRun, RunSession};
pub use crate::training::TrainingConfig;
pub use xbfs_archsim::{ArchSpec, FaultPlan, Link};
pub use xbfs_engine::trace::{
    CountingSink, MemorySink, NullSink, RingSink, SamplingSink, TeeSink, TraceCounts, TraceEvent,
    TraceSink, NULL_SINK,
};
pub use xbfs_engine::XbfsError;
