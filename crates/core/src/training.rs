//! Offline training-set generation (the paper's Fig. 6, left column).
//!
//! For every (graph, architecture-pair) combination: profile one BFS, run
//! the exhaustive `(M, N)` sweep, and label the Fig. 7 feature vector with
//! the best-performing switching point. Two parallel datasets come out —
//! one targeting `M`, one targeting `N` — because the paper trains one
//! regression per parameter ("We will only illustrate how to get the best
//! M. The best N can be obtained the same way", §III).

use crate::{
    features::feature_vector,
    oracle::{best_mn_cross, best_mn_single, MnGrid},
};
use serde::{Deserialize, Serialize};
use xbfs_archsim::{profile, ArchSpec, Link};
use xbfs_engine::FixedMN;
use xbfs_graph::{GraphStats, RmatConfig, RmatGenerator};

/// Which graphs and how the sweep labels them.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrainingConfig {
    /// Graph 500 SCALEs to generate.
    pub scales: Vec<u32>,
    /// Edgefactors per scale.
    pub edgefactors: Vec<u32>,
    /// Kronecker probability sets `(A, B, C, D)`.
    pub prob_sets: Vec<(f64, f64, f64, f64)>,
    /// BFS sources per graph (drawn deterministically from the seed).
    pub sources_per_graph: usize,
    /// The exhaustive-search grid.
    pub grid: MnGrid,
    /// Generator seed.
    pub seed: u64,
}

impl TrainingConfig {
    /// A configuration sized like the paper's 140-sample training set
    /// (graphs × probability sets × sources × 4 architecture pairs).
    pub fn paper_sized() -> Self {
        Self {
            scales: vec![10, 11, 12, 13, 14],
            edgefactors: vec![8, 16, 32],
            prob_sets: vec![(0.57, 0.19, 0.19, 0.05), (0.45, 0.25, 0.15, 0.15)],
            sources_per_graph: 1,
            grid: MnGrid::paper_1000(),
            seed: 0x7ea1_2014,
        }
    }

    /// A tiny configuration for unit tests.
    pub fn quick() -> Self {
        Self {
            scales: vec![9, 10],
            edgefactors: vec![8, 16],
            prob_sets: vec![(0.57, 0.19, 0.19, 0.05)],
            sources_per_graph: 1,
            grid: MnGrid::coarse(),
            seed: 42,
        }
    }
}

/// Bookkeeping for one labeled sample.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrainingLabel {
    /// Graph SCALE.
    pub scale: u32,
    /// Graph edgefactor.
    pub edgefactor: u32,
    /// "CPU", "GPU", "MIC" or "CPU+GPU".
    pub pair: String,
    /// The best `(M, N)` the sweep found.
    pub best: FixedMN,
    /// Simulated seconds at the best point.
    pub seconds: f64,
}

/// The generated training data.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrainingSet {
    /// Features → best `M`.
    pub dataset_m: xbfs_svm::Dataset,
    /// Features → best `N`.
    pub dataset_n: xbfs_svm::Dataset,
    /// One label record per sample, aligned with the datasets.
    pub labels: Vec<TrainingLabel>,
}

impl TrainingSet {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` if no samples were generated.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// The four architecture pairs the paper's model must serve: the three
/// single-device combinations plus the CPU→GPU cross pair of Algorithm 3.
pub fn paper_arch_pairs() -> Vec<(ArchSpec, ArchSpec)> {
    let cpu = ArchSpec::cpu_sandy_bridge();
    let gpu = ArchSpec::gpu_k20x();
    let mic = ArchSpec::mic_knights_corner();
    vec![
        (cpu.clone(), cpu.clone()),
        (gpu.clone(), gpu.clone()),
        (mic.clone(), mic),
        (cpu, gpu),
    ]
}

/// Human-readable pair name.
fn pair_name(td: &ArchSpec, bu: &ArchSpec) -> String {
    if td.name == bu.name {
        td.name.clone()
    } else {
        format!("{}+{}", td.name, bu.name)
    }
}

/// Generate the training set over `arch_pairs` (Fig. 6 steps 1–2).
///
/// For a single-architecture pair the label is the best `(M, N)` of that
/// device's sweep. For a cross pair, the GPU-internal `(M2, N2)` is first
/// fixed at the bottom-up device's own best, then the handoff `(M1, N1)`
/// is swept — matching Algorithm 3's two separate `RegressionModel` calls.
pub fn generate(
    config: &TrainingConfig,
    arch_pairs: &[(ArchSpec, ArchSpec)],
    link: &Link,
) -> TrainingSet {
    let mut dataset_m = xbfs_svm::Dataset::new(crate::features::FEATURE_DIM);
    let mut dataset_n = xbfs_svm::Dataset::new(crate::features::FEATURE_DIM);
    let mut labels = Vec::new();

    for &scale in &config.scales {
        for &edgefactor in &config.edgefactors {
            for (pi, &(a, b, c, d)) in config.prob_sets.iter().enumerate() {
                let seed = config
                    .seed
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(((scale as u64) << 24) ^ ((edgefactor as u64) << 8) ^ pi as u64);
                let rmat = RmatConfig::new(scale, edgefactor)
                    .with_probabilities(a, b, c, d)
                    .with_seed(seed);
                let csr = RmatGenerator::new(rmat).csr();
                let stats = GraphStats::rmat(&csr, a, b, c, d);

                for s in 0..config.sources_per_graph {
                    let Some(source) = pick_source(&csr, seed ^ s as u64) else {
                        continue;
                    };
                    let prof = profile(&csr, source);
                    for (td, bu) in arch_pairs {
                        let best = if td.name == bu.name {
                            best_mn_single(&prof, td, &config.grid)
                        } else {
                            let gpu_best = best_mn_single(&prof, bu, &config.grid).mn;
                            best_mn_cross(&prof, td, bu, link, gpu_best, &config.grid)
                        };
                        let x = feature_vector(&stats, td, bu);
                        dataset_m.push(x.clone(), best.mn.m);
                        dataset_n.push(x, best.mn.n);
                        labels.push(TrainingLabel {
                            scale,
                            edgefactor,
                            pair: pair_name(td, bu),
                            best: best.mn,
                            seconds: best.seconds,
                        });
                    }
                }
            }
        }
    }

    TrainingSet {
        dataset_m,
        dataset_n,
        labels,
    }
}

/// Pick a deterministic non-isolated BFS source, Graph 500 style (roots
/// must have degree ≥ 1). Returns `None` for edgeless graphs.
pub fn pick_source(csr: &xbfs_graph::Csr, seed: u64) -> Option<u32> {
    let n = csr.num_vertices();
    if n == 0 {
        return None;
    }
    // Deterministic probe sequence from a splitmix-style hash.
    let mut state = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    for _ in 0..n.min(1024) {
        state ^= state >> 30;
        state = state.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        state ^= state >> 27;
        let v = (state % n as u64) as u32;
        if csr.degree(v) > 0 {
            return Some(v);
        }
    }
    csr.vertices().find(|&v| csr.degree(v) > 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_config_generates_aligned_datasets() {
        let cfg = TrainingConfig::quick();
        let pairs = paper_arch_pairs();
        let ts = generate(&cfg, &pairs, &Link::pcie3());
        // 2 scales × 2 edgefactors × 1 prob set × 1 source × 4 pairs.
        assert_eq!(ts.len(), 16);
        assert_eq!(ts.dataset_m.len(), 16);
        assert_eq!(ts.dataset_n.len(), 16);
        assert!(ts.labels.iter().all(|l| l.best.m > 0.0 && l.best.n > 0.0));
        assert!(ts.labels.iter().all(|l| l.seconds > 0.0));
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = TrainingConfig::quick();
        let pairs = vec![(ArchSpec::cpu_sandy_bridge(), ArchSpec::cpu_sandy_bridge())];
        let a = generate(&cfg, &pairs, &Link::pcie3());
        let b = generate(&cfg, &pairs, &Link::pcie3());
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.dataset_m, b.dataset_m);
    }

    #[test]
    fn labels_cover_all_pairs() {
        let cfg = TrainingConfig::quick();
        let ts = generate(&cfg, &paper_arch_pairs(), &Link::pcie3());
        for name in ["CPU", "GPU", "MIC", "CPU+GPU"] {
            assert!(
                ts.labels.iter().any(|l| l.pair == name),
                "missing pair {name}"
            );
        }
    }

    #[test]
    fn best_m_varies_across_samples() {
        // Table III's point: the best switching point changes significantly
        // between graphs/platforms — the training targets must not be
        // constant or regression would be pointless.
        let cfg = TrainingConfig::quick();
        let ts = generate(&cfg, &paper_arch_pairs(), &Link::pcie3());
        let first = ts.dataset_m.target(0);
        assert!(
            ts.dataset_m.targets().iter().any(|&t| t != first),
            "all best-M labels identical: {:?}",
            ts.dataset_m.targets()
        );
    }

    #[test]
    fn pick_source_avoids_isolated_vertices() {
        let g = xbfs_graph::gen::star(50);
        for seed in 0..20 {
            let s = pick_source(&g, seed).unwrap();
            assert!(g.degree(s) > 0);
        }
        let empty = xbfs_graph::gen::uniform_random(10, 0, 1);
        assert_eq!(pick_source(&empty, 0), None);
    }
}
