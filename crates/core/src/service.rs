//! `core::service` — a multi-tenant BFS query service with admission
//! control, deadlines, fault isolation, and graceful drain.
//!
//! The ROADMAP's north star is a service that survives heavy traffic, not
//! a single traversal. This module is that service layer: it holds one
//! immutable graph behind `Arc<Csr>` and runs many concurrent
//! [`RunSession`]s against it, each query owning its entire mutable
//! footprint (traversal state, fault stream, simulated clock, trace
//! buffer) so one query's fault, blown deadline, or kernel panic can
//! never touch its in-flight neighbors.
//!
//! **Determinism.** Requests carry *simulated* arrival times and the
//! per-query costs come from the simulated clock, so the whole service
//! schedule is a discrete-event simulation: admission, queueing,
//! deadline checks, and the shared loss ledger all advance on simulated
//! time in a deterministic event order. Real OS threads still execute
//! queries concurrently — every query admitted at one event step runs in
//! parallel — but thread timing can never change an outcome, which is
//! what lets the chaos suite replay seeded overload scenarios byte-for-
//! byte.
//!
//! **Admission and shedding.** Capacity-bounded slots plus a bounded FIFO
//! queue. A query arriving with the queue full is shed immediately with
//! [`XbfsError::Overloaded`] (queue-depth context included) instead of
//! waiting unboundedly; a queued query whose deadline expires before a
//! slot frees is shed with [`XbfsError::DeadlineExceeded`]; a query
//! arriving after drain begins is refused with
//! [`XbfsError::ShuttingDown`].
//!
//! **Fault isolation with shared permanent losses.** A seeded
//! [`FaultPlan`], breaker trip, or panic degrades *that query* down the
//! recovery ladder (see [`crate::recovery`]). Only *permanent* device
//! losses are promoted to the service-wide ledger — folded in at the
//! losing query's completion event — so queries starting later skip the
//! lost device's rungs via [`RunSession::presume_lost`] while queries
//! already in flight, and anything that completed earlier, are bit-for-
//! bit identical to their solo runs.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use crate::cross::CrossParams;
use crate::health::{BreakerState, Device, TransitionCause};
use crate::observe::timeseries::{
    SloPolicy, SloReport, SnapshotPolicy, TimeSeriesRegistry, TimeWeighted, WindowSnapshot,
};
use crate::observe::trace_event_json;
use crate::policy_online::{Observation, OnlineBandit, PolicyMode, PolicyRun, SharedPolicy};
use crate::recovery::{RecoveredRun, ResilienceConfig, Rung};
use crate::runtime::AdaptiveRuntime;
use crate::session::{BatchSession, RunSession};
use serde::{Deserialize, Serialize};
use xbfs_archsim::{ArchSpec, FaultPlan, Link};
use xbfs_engine::par::payload_to_string;
use xbfs_engine::trace::{MemorySink, RingSink, SamplingSink, TeeSink, TraceEvent, TraceSink};
use xbfs_engine::{XbfsError, MAX_LANES};
use xbfs_graph::{Csr, GraphStats, VertexId};

/// One query submitted to the service.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QueryRequest {
    /// Caller-assigned query id (appears in events, metrics, reports).
    pub id: u64,
    /// BFS source vertex.
    pub source: VertexId,
    /// Simulated service clock at which the query arrives.
    pub arrival_s: f64,
    /// Per-query deadline in simulated seconds, measured **from
    /// arrival**: time spent queued counts against it, and the remainder
    /// becomes the traversal's clock budget.
    pub deadline_s: Option<f64>,
    /// Seeded fault plan for this query (`None` means no faults; optional
    /// so request lines can omit it).
    pub fault_plan: Option<FaultPlan>,
}

impl QueryRequest {
    /// Start building a query for `source`: arrival 0, no deadline, no
    /// faults until the builder says otherwise.
    ///
    /// ```
    /// use xbfs_core::prelude::*;
    /// let req = QueryRequest::builder(7, 3).arrival(0.25).deadline(2.0).build();
    /// assert_eq!(req.deadline_s, Some(2.0));
    /// ```
    pub fn builder(id: u64, source: VertexId) -> QueryRequestBuilder {
        QueryRequestBuilder {
            req: QueryRequest {
                id,
                source,
                arrival_s: 0.0,
                deadline_s: None,
                fault_plan: None,
            },
        }
    }

    /// A fault-free query with no deadline.
    #[deprecated(
        note = "use `QueryRequest::builder(id, source).arrival(arrival_s).build()` instead"
    )]
    pub fn new(id: u64, source: VertexId, arrival_s: f64) -> Self {
        Self {
            id,
            source,
            arrival_s,
            deadline_s: None,
            fault_plan: None,
        }
    }

    /// The effective fault plan (no faults when the request omitted one).
    pub fn plan(&self) -> FaultPlan {
        self.fault_plan.clone().unwrap_or_else(FaultPlan::none)
    }
}

/// Builder for [`QueryRequest`] — every optional knob gets a named setter
/// instead of post-construction field pokes.
#[derive(Clone, Debug)]
pub struct QueryRequestBuilder {
    req: QueryRequest,
}

impl QueryRequestBuilder {
    /// Simulated service clock at which the query arrives (default 0).
    pub fn arrival(mut self, arrival_s: f64) -> Self {
        self.req.arrival_s = arrival_s;
        self
    }

    /// Per-query deadline in simulated seconds, measured from arrival.
    pub fn deadline(mut self, deadline_s: f64) -> Self {
        self.req.deadline_s = Some(deadline_s);
        self
    }

    /// Seeded fault plan for this query.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.req.fault_plan = Some(plan);
        self
    }

    /// Finish the request.
    pub fn build(self) -> QueryRequest {
        self.req
    }
}

/// One item of a service schedule: a query arrival or the drain marker.
#[derive(Clone, Debug, PartialEq)]
pub enum ScheduleItem {
    /// A query arrives.
    Query(QueryRequest),
    /// The service begins draining at `at_s`: arrivals from then on are
    /// refused with [`XbfsError::ShuttingDown`].
    Drain {
        /// Simulated service clock at which draining begins.
        at_s: f64,
    },
}

impl ScheduleItem {
    /// The simulated time this item occurs at.
    pub fn at_s(&self) -> f64 {
        match self {
            ScheduleItem::Query(q) => q.arrival_s,
            ScheduleItem::Drain { at_s } => *at_s,
        }
    }

    /// Parse one JSON line of a request stream: either a [`QueryRequest`]
    /// object or a drain marker `{"drain_at_s": <seconds>}`.
    pub fn from_json_line(line: &str) -> Result<Self, XbfsError> {
        let value: serde_json::Value =
            serde_json::from_str(line).map_err(|e| XbfsError::InvalidArgument {
                what: format!("request line parse error: {e}"),
            })?;
        if let Some(at) = value.get("drain_at_s") {
            let at_s = at.as_f64().ok_or_else(|| XbfsError::InvalidArgument {
                what: "drain_at_s must be a number".to_string(),
            })?;
            return Ok(ScheduleItem::Drain { at_s });
        }
        let req = <QueryRequest as serde::Deserialize>::from_value(&value).map_err(|e| {
            XbfsError::InvalidArgument {
                what: format!("request line parse error: {e}"),
            }
        })?;
        Ok(ScheduleItem::Query(req))
    }

    /// Render this item back to its JSON-line form.
    pub fn to_json_line(&self) -> String {
        match self {
            ScheduleItem::Query(q) => serde_json::to_string(q).expect("request serializes"),
            ScheduleItem::Drain { at_s } => format!("{{\"drain_at_s\":{at_s}}}"),
        }
    }
}

/// What happens to queries still queued (admitted, not yet started) when
/// the drain marker fires. Queries already *running* always complete —
/// they checkpoint on their configured cadence, so even a hard kill after
/// drain loses at most one checkpoint interval of levels.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DrainMode {
    /// Queued queries still run to completion (graceful drain).
    #[default]
    Complete,
    /// Queued queries are shed with [`XbfsError::ShuttingDown`].
    Cancel,
}

/// Which queued queries may share a batch word. Batches always exclude
/// queries with fault plans: lane-packed lockstep execution has no
/// per-lane recovery ladder, so a faulty query would poison its word.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BatchCompat {
    /// Any fault-free query joins, deadline or not; per-lane deadlines
    /// are re-checked against the batch completion instant.
    #[default]
    FaultFree,
    /// Only fault-free queries *without* deadlines join — batching can
    /// never convert a would-have-served query into a deadline miss.
    FaultAndDeadlineFree,
}

impl BatchCompat {
    /// Whether `req` may ride a batch under this rule.
    pub fn admits(self, req: &QueryRequest) -> bool {
        match self {
            BatchCompat::FaultFree => req.fault_plan.is_none(),
            BatchCompat::FaultAndDeadlineFree => {
                req.fault_plan.is_none() && req.deadline_s.is_none()
            }
        }
    }
}

/// The service's batching stage: when a slot frees, up to `window`
/// compatible queries are popped from the queue front and served as one
/// lane-packed [`BatchSession`] occupying a single slot.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BatchPolicy {
    /// Most queries collected per dispatch; `0` or `1` disables batching
    /// (every query runs solo, exactly the pre-batching service).
    pub window: u32,
    /// Hard lane bound per batch (≤ 64, the `u64` word width).
    pub max_lanes: u32,
    /// Which queued queries are allowed to share a word.
    pub compat: BatchCompat,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        Self {
            window: 0,
            max_lanes: MAX_LANES as u32,
            compat: BatchCompat::default(),
        }
    }
}

impl BatchPolicy {
    /// A policy batching up to `window` queries with the default
    /// compatibility rule.
    pub fn windowed(window: u32) -> Self {
        Self {
            window,
            ..Self::default()
        }
    }

    /// Whether this policy ever forms a multi-query batch.
    pub fn enabled(&self) -> bool {
        self.window > 1
    }

    /// The effective per-dispatch lane bound.
    pub fn lane_limit(&self) -> usize {
        self.window.min(self.max_lanes).min(MAX_LANES as u32) as usize
    }

    /// Validate the knobs.
    pub fn validate(&self) -> Result<(), XbfsError> {
        if self.window > 0 && !(1..=MAX_LANES as u32).contains(&self.max_lanes) {
            return Err(XbfsError::InvalidArgument {
                what: format!(
                    "batch max_lanes must be in 1..={MAX_LANES}, got {}",
                    self.max_lanes
                ),
            });
        }
        Ok(())
    }
}

/// Head-sampling of per-query traces: the keep/drop decision is made
/// once per query from a seeded hash of `(seed, query id)`, so a sampled
/// service run is as deterministic as an unsampled one — the same seed
/// keeps the same queries on every replay.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceSamplePolicy {
    /// Probability a query's trace is kept, in `[0, 1]` (1 = keep all,
    /// the pre-sampling behavior).
    pub rate: f64,
    /// Seed for the per-query keep/drop hash.
    pub seed: u64,
}

impl Default for TraceSamplePolicy {
    fn default() -> Self {
        Self { rate: 1.0, seed: 0 }
    }
}

impl TraceSamplePolicy {
    /// Validate the rate (finite, in `[0, 1]`).
    pub fn validate(&self) -> Result<(), XbfsError> {
        if !(self.rate.is_finite() && (0.0..=1.0).contains(&self.rate)) {
            return Err(XbfsError::InvalidArgument {
                what: format!("trace sample rate must be in [0, 1], got {}", self.rate),
            });
        }
        Ok(())
    }
}

/// Service-level knobs: slots, queue bound, per-query resilience.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Concurrent query slots (≥ 1).
    pub capacity: u32,
    /// Bound on the admission queue; an arrival finding the queue at this
    /// depth is shed with [`XbfsError::Overloaded`].
    pub queue_limit: u32,
    /// Base failure-handling configuration applied to every query. A
    /// query's own `deadline_s` tightens (never loosens) this config's
    /// deadline.
    pub resilience: ResilienceConfig,
    /// What happens to queued queries at drain time.
    pub drain: DrainMode,
    /// Buffer each query's trace events into the report (needed for the
    /// per-query chrome export; costs memory on big runs).
    pub keep_query_traces: bool,
    /// Directory for per-query checkpoint spills (`query-<id>.ck.json`),
    /// active when the resilience config has a checkpoint cadence. This
    /// is what makes in-flight queries externally resumable across a
    /// process death mid-drain.
    pub spill_dir: Option<String>,
    /// The batching stage (off by default: `window` 0).
    pub batching: BatchPolicy,
    /// Live time-series snapshot cadence (off by default).
    pub snapshot: SnapshotPolicy,
    /// Optional service-level objectives evaluated over the run.
    pub slo: Option<SloPolicy>,
    /// Per-query flight-recorder capacity: each worker keeps this many of
    /// its most recent trace events in a bounded ring, dumped as a
    /// post-mortem when the query ends in a typed error. `0` disables the
    /// recorder (the default — no ring, no dumps, byte-identical output).
    pub flight_recorder: usize,
    /// Head-sampling of the per-query trace buffers (effective only when
    /// [`ServiceConfig::keep_query_traces`] is on).
    pub trace_sample: TraceSamplePolicy,
    /// Per-level placement policy applied to every query (default:
    /// [`PolicyMode::Offline`], the fixed Algorithm 3 switch points —
    /// byte-identical to the pre-policy service). With
    /// [`PolicyMode::Online`], one master bandit learns across the whole
    /// query stream: each query snapshots it at admission and its realized
    /// level costs are folded back in simulated completion order, so the
    /// run stays deterministic despite concurrent workers.
    pub policy: PolicyMode,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            capacity: 2,
            queue_limit: 8,
            resilience: ResilienceConfig::default_runtime(),
            drain: DrainMode::Complete,
            keep_query_traces: false,
            spill_dir: None,
            batching: BatchPolicy::default(),
            snapshot: SnapshotPolicy::off(),
            slo: None,
            flight_recorder: 0,
            trace_sample: TraceSamplePolicy::default(),
            policy: PolicyMode::Offline,
        }
    }
}

impl ServiceConfig {
    /// Validate the knobs (capacity ≥ 1, inner resilience, batching, and
    /// telemetry configs valid).
    pub fn validate(&self) -> Result<(), XbfsError> {
        if self.capacity == 0 {
            return Err(XbfsError::InvalidArgument {
                what: "service capacity must be at least 1".to_string(),
            });
        }
        self.batching.validate()?;
        self.snapshot.validate()?;
        if let Some(slo) = &self.slo {
            slo.validate()?;
        }
        self.trace_sample.validate()?;
        self.resilience.validate()
    }
}

/// Terminal state of one scheduled query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Disposition {
    /// Ran to a validated tree.
    Served {
        /// `true` if a rung below the cross combination served it.
        degraded: bool,
    },
    /// Shed at arrival: the admission queue was full.
    ShedOverloaded,
    /// Shed at or after the drain marker.
    ShedShutdown,
    /// The deadline expired — while queued (never ran) or mid-run.
    DeadlineMissed,
    /// Ran and ended in a typed error other than the deadline.
    Failed,
}

impl Disposition {
    /// Stable lowercase label for metrics keys and reports.
    pub fn name(self) -> &'static str {
        match self {
            Disposition::Served { degraded: false } => "served",
            Disposition::Served { degraded: true } => "degraded",
            Disposition::ShedOverloaded => "shed-overloaded",
            Disposition::ShedShutdown => "shed-shutdown",
            Disposition::DeadlineMissed => "deadline-missed",
            Disposition::Failed => "failed",
        }
    }
}

/// Everything the service knows about one query after the run.
#[derive(Debug)]
pub struct QueryOutcome {
    /// Caller-assigned query id.
    pub id: u64,
    /// Requested source vertex.
    pub source: VertexId,
    /// Simulated arrival time.
    pub arrival_s: f64,
    /// When the query started executing (`None` if shed).
    pub start_s: Option<f64>,
    /// When the query reached its terminal state (`None` if shed at
    /// arrival; shed-from-queue queries record the shed instant).
    pub completion_s: Option<f64>,
    /// Seconds spent waiting in the admission queue.
    pub wait_s: f64,
    /// Terminal state.
    pub disposition: Disposition,
    /// The typed error for non-served queries.
    pub error: Option<XbfsError>,
    /// The validated result for served queries.
    pub run: Option<RecoveredRun>,
}

/// The flight-recorder dump for one query that ended in a typed error:
/// the last events the query's bounded ring saw before it died, plus
/// enough identity to reconcile the dump with the query's outcome.
#[derive(Clone, Debug)]
pub struct PostMortem {
    /// Caller-assigned query id.
    pub query: u64,
    /// Requested source vertex.
    pub source: VertexId,
    /// Terminal disposition label ("failed", "deadline-missed").
    pub disposition: &'static str,
    /// The typed error, rendered.
    pub error: String,
    /// Service clock at query start.
    pub start_s: f64,
    /// Service clock at the terminal event.
    pub completion_s: f64,
    /// Ring capacity the recorder ran with.
    pub capacity: usize,
    /// Events the ring overwrote before the dump (0 = the dump is the
    /// query's complete trace).
    pub dropped: u64,
    /// The retained events, oldest first, on the query's private clock.
    pub events: Vec<TraceEvent>,
}

impl PostMortem {
    /// Serialize the dump as a pretty-printed JSON artifact (events via
    /// [`crate::observe::trace_event_json`]).
    pub fn to_json(&self) -> String {
        let events: Vec<serde_json::Value> = self.events.iter().map(trace_event_json).collect();
        serde_json::to_string_pretty(&serde_json::json!({
            "query": self.query,
            "source": self.source,
            "disposition": self.disposition,
            "error": self.error,
            "start_s": self.start_s,
            "completion_s": self.completion_s,
            "flight_recorder_capacity": self.capacity,
            "dropped_events": self.dropped,
            "events": events,
        }))
        .expect("post-mortem serializes")
    }
}

/// One query's buffered trace, positioned on the service clock.
#[derive(Clone, Debug)]
pub struct QueryTrace {
    /// Caller-assigned query id.
    pub query: u64,
    /// Service clock at which the query started (its events are relative
    /// to this origin).
    pub start_s: f64,
    /// The query's own events, on its private clock.
    pub events: Vec<TraceEvent>,
}

/// The result of replaying one schedule through the service.
#[derive(Debug, Default)]
pub struct ServiceReport {
    /// Per-query terminal states, in schedule order.
    pub outcomes: Vec<QueryOutcome>,
    /// Queries admitted (started or queued).
    pub admitted: u32,
    /// Served on the top rung.
    pub served: u32,
    /// Served on a lower rung.
    pub degraded: u32,
    /// Shed at arrival with a full queue.
    pub shed_overloaded: u32,
    /// Refused or cancelled by drain.
    pub shed_shutdown: u32,
    /// Deadline expired (queued or mid-run).
    pub deadline_missed: u32,
    /// Ran and failed with a non-deadline error.
    pub failed: u32,
    /// Deepest the admission queue ever got.
    pub peak_queue_depth: u32,
    /// Most queries ever running at once.
    pub peak_in_flight: u32,
    /// Time-weighted mean admission-queue depth over the run's makespan.
    pub mean_queue_depth: f64,
    /// Time-weighted mean of occupied slots over the run's makespan.
    pub mean_in_flight: f64,
    /// Simulated time of the last terminal event.
    pub makespan_s: f64,
    /// Devices permanently lost during the run, with the service time at
    /// which the loss was promoted to the shared ledger.
    pub lost_devices: Vec<(Device, f64)>,
    /// Service-level admission events (query/queue vocabulary), in
    /// simulated event order.
    pub events: Vec<TraceEvent>,
    /// Per-query traces, when [`ServiceConfig::keep_query_traces`] is on.
    pub query_traces: Vec<QueryTrace>,
    /// Closed telemetry windows, when [`ServiceConfig::snapshot`] is on.
    pub timeseries: Vec<WindowSnapshot>,
    /// The SLO verdict, when [`ServiceConfig::slo`] and
    /// [`ServiceConfig::snapshot`] are both configured.
    pub slo: Option<SloReport>,
    /// Flight-recorder dumps for queries that ended in a typed error,
    /// when [`ServiceConfig::flight_recorder`] is non-zero. Completion
    /// order.
    pub postmortems: Vec<PostMortem>,
}

impl ServiceReport {
    /// The outcome for query `id`, if it was scheduled.
    pub fn outcome(&self, id: u64) -> Option<&QueryOutcome> {
        self.outcomes.iter().find(|o| o.id == id)
    }

    /// Service events followed by every buffered per-query event — the
    /// input for [`crate::observe::prometheus_text`], which aggregates
    /// both the service families and the per-traversal families.
    pub fn merged_events(&self) -> Vec<TraceEvent> {
        let mut all = self.events.clone();
        for qt in &self.query_traces {
            all.extend(qt.events.iter().cloned());
        }
        all
    }

    /// Serialize the report (counters + per-query summaries; results and
    /// traces elided) to JSON.
    pub fn to_json(&self) -> String {
        let queries: Vec<serde_json::Value> = self
            .outcomes
            .iter()
            .map(|o| {
                serde_json::json!({
                    "id": o.id,
                    "source": o.source,
                    "arrival_s": o.arrival_s,
                    "start_s": o.start_s,
                    "completion_s": o.completion_s,
                    "wait_s": o.wait_s,
                    "disposition": o.disposition.name(),
                    "rung": o.run.as_ref().map(|r| r.report.rung.label()),
                    "error": o.error.as_ref().map(|e| e.to_string()),
                })
            })
            .collect();
        let lost: Vec<serde_json::Value> = self
            .lost_devices
            .iter()
            .map(|(d, at)| serde_json::json!({"device": d.name(), "at_s": at}))
            .collect();
        serde_json::to_string_pretty(&serde_json::json!({
            "admitted": self.admitted,
            "served": self.served,
            "degraded": self.degraded,
            "shed_overloaded": self.shed_overloaded,
            "shed_shutdown": self.shed_shutdown,
            "deadline_missed": self.deadline_missed,
            "failed": self.failed,
            "peak_queue_depth": self.peak_queue_depth,
            "peak_in_flight": self.peak_in_flight,
            "mean_queue_depth": self.mean_queue_depth,
            "mean_in_flight": self.mean_in_flight,
            "makespan_s": self.makespan_s,
            "lost_devices": lost,
            "queries": queries,
        }))
        .expect("service report serializes")
    }
}

/// The flight-recorder tail a worker hands back: `(retained events,
/// overwritten-event count)`.
type RingDump = (Vec<TraceEvent>, u64);

/// What one query's worker thread hands back.
struct QueryDone {
    result: Result<RecoveredRun, XbfsError>,
    events: Vec<TraceEvent>,
    /// The ring contents, when the flight recorder was on.
    ring: Option<RingDump>,
    /// Online-policy observations the query accumulated (empty when the
    /// service runs offline). Applied to the master bandit at this
    /// query's completion event, in simulated order.
    observations: Vec<Observation>,
}

/// What one slot's worker thread hands back: a solo query's result, or a
/// whole batch's per-lane results plus the shared batch trace and clock.
enum Done {
    Solo(Box<QueryDone>),
    Batch {
        /// `(outcome slot, per-lane result)`, in lane order.
        lanes: Vec<(usize, Result<RecoveredRun, XbfsError>)>,
        events: Vec<TraceEvent>,
        /// The batch's shared simulated duration.
        total_seconds: f64,
        /// The shared ring contents, when the flight recorder was on.
        ring: Option<RingDump>,
        /// The batch's shared online-policy observation log.
        observations: Vec<Observation>,
    },
}

impl Done {
    /// Simulated seconds the slot was occupied.
    fn duration(&self) -> f64 {
        match self {
            Done::Solo(done) => match &done.result {
                Ok(run) => run.report.total_seconds,
                Err(XbfsError::DeadlineExceeded { elapsed_s, .. }) => *elapsed_s,
                // Other terminal errors carry no clock; charge nothing
                // (deterministic, documented).
                Err(_) => 0.0,
            },
            Done::Batch { total_seconds, .. } => *total_seconds,
        }
    }
}

/// The run-wide telemetry accumulators `run_schedule` feeds: always-on
/// time-weighted gauges (they back the report's mean fields) plus the
/// optional windowed registry.
struct Telemetry {
    queue: TimeWeighted,
    in_flight: TimeWeighted,
    registry: Option<TimeSeriesRegistry>,
}

impl Telemetry {
    fn new(config: &ServiceConfig) -> Self {
        Self {
            queue: TimeWeighted::new(0.0),
            in_flight: TimeWeighted::new(0.0),
            registry: config
                .snapshot
                .enabled()
                .then(|| TimeSeriesRegistry::new(config.snapshot, config.slo)),
        }
    }

    fn admit(&mut self, t: f64) {
        if let Some(r) = &mut self.registry {
            r.record_admit(t);
        }
    }

    fn shed(&mut self, t: f64, deadline: bool) {
        if let Some(r) = &mut self.registry {
            r.record_shed(t, deadline);
        }
    }

    fn queue_depth(&mut self, t: f64, depth: u32) {
        self.queue.set(t, f64::from(depth));
        if let Some(r) = &mut self.registry {
            r.record_queue_depth(t, depth);
        }
    }

    fn in_flight(&mut self, t: f64, n: u32) {
        self.in_flight.set(t, f64::from(n));
        if let Some(r) = &mut self.registry {
            r.record_in_flight(t, n);
        }
    }

    fn start(&mut self, t: f64, wait_s: f64) {
        if let Some(r) = &mut self.registry {
            r.record_start(t, wait_s);
        }
    }

    fn complete(&mut self, t: f64, latency_s: f64, deadline_missed: bool) {
        if let Some(r) = &mut self.registry {
            r.record_complete(t, latency_s, deadline_missed);
        }
    }

    fn batch(&mut self, t: f64, lanes: u32) {
        if let Some(r) = &mut self.registry {
            r.record_batch(t, lanes);
        }
    }

    fn corruption(&mut self, t: f64, detected: u32, repaired: u32) {
        if (detected | repaired) != 0 {
            if let Some(r) = &mut self.registry {
                r.record_corruption(t, detected, repaired);
            }
        }
    }

    /// Close the run at `makespan_s` and fold everything into `report`.
    fn finish(mut self, report: &mut ServiceReport, makespan_s: f64) {
        report.mean_queue_depth = self.queue.mean(makespan_s);
        report.mean_in_flight = self.in_flight.mean(makespan_s);
        if let Some(r) = &mut self.registry {
            r.finish(makespan_s);
            report.slo = r.slo_report();
        }
        if let Some(r) = self.registry {
            report.timeseries = r.into_snapshots();
        }
    }
}

/// A query (or batch of queries) admitted to a slot, executing on its own
/// OS thread.
struct Running<'scope> {
    /// Index into the outcomes vector (a batch's lead lane).
    slot: usize,
    start_s: f64,
    handle: Option<std::thread::ScopedJoinHandle<'scope, Done>>,
    /// `(completion_s, result)` once the thread has been joined.
    finished: Option<(f64, Done)>,
}

/// The long-running query service: one immutable graph, one platform,
/// many concurrent fault-isolated queries.
pub struct QueryService {
    csr: Arc<Csr>,
    cpu: ArchSpec,
    gpu: ArchSpec,
    link: Link,
    params: CrossParams,
    config: ServiceConfig,
    /// The master bandit (online policy only): snapshotted per query at
    /// admission, updated with each query's observations at completion.
    policy: Option<SharedPolicy>,
}

impl QueryService {
    /// A service over `csr` on an explicit platform.
    pub fn new(
        csr: Arc<Csr>,
        cpu: ArchSpec,
        gpu: ArchSpec,
        link: Link,
        params: CrossParams,
        config: ServiceConfig,
    ) -> Self {
        let policy = SharedPolicy::from_mode(config.policy);
        Self {
            csr,
            cpu,
            gpu,
            link,
            params,
            config,
            policy,
        }
    }

    /// A service on a trained runtime's platform, with switch parameters
    /// predicted from the graph's statistics.
    pub fn from_runtime(
        runtime: &AdaptiveRuntime,
        csr: Arc<Csr>,
        stats: &GraphStats,
        config: ServiceConfig,
    ) -> Self {
        let params = runtime.predict_params(stats);
        let policy = SharedPolicy::from_mode(config.policy);
        Self {
            csr,
            cpu: runtime.cpu.clone(),
            gpu: runtime.gpu.clone(),
            link: runtime.link,
            params,
            config,
            policy,
        }
    }

    /// The shared graph.
    pub fn csr(&self) -> &Arc<Csr> {
        &self.csr
    }

    /// Replay `schedule` through the service and report every query's
    /// terminal state.
    ///
    /// Items are processed in ascending simulated time (ties keep input
    /// order, completions before same-instant arrivals so a finishing
    /// query frees its slot first). Every query ends in exactly one of:
    /// a validated tree, a typed error, or a shed — a panic inside a
    /// query is caught at the thread boundary and becomes that query's
    /// [`XbfsError::KernelPanic`].
    pub fn run_schedule(&self, schedule: &[ScheduleItem]) -> Result<ServiceReport, XbfsError> {
        self.config.validate()?;
        let mut items: Vec<&ScheduleItem> = schedule.iter().collect();
        items.sort_by(|a, b| a.at_s().total_cmp(&b.at_s()));

        let mut report = ServiceReport::default();
        // Pre-create outcome records for every query, in schedule order.
        let mut requests: Vec<&QueryRequest> = Vec::new();
        for item in &items {
            if let ScheduleItem::Query(q) = item {
                requests.push(q);
                report.outcomes.push(QueryOutcome {
                    id: q.id,
                    source: q.source,
                    arrival_s: q.arrival_s,
                    start_s: None,
                    completion_s: None,
                    wait_s: 0.0,
                    disposition: Disposition::Failed,
                    error: None,
                    run: None,
                });
            }
        }

        let capacity = self.config.capacity as usize;
        let queue_limit = self.config.queue_limit as usize;
        let mut queue: VecDeque<usize> = VecDeque::new();
        let mut lost: Vec<(Device, f64)> = Vec::new();
        let mut drained_at: Option<f64> = None;
        let mut clock = 0.0f64;
        let mut tele = Telemetry::new(&self.config);

        std::thread::scope(|scope| {
            let mut running: Vec<Running<'_>> = Vec::new();
            // Maps schedule position -> outcome index for query items.
            let mut query_index = 0usize;
            let mut next_item = 0usize;

            loop {
                // Resolve completion times: join every running query whose
                // thread has not been joined yet. Joining blocks only wall
                // clock — all these threads already run concurrently — and
                // their *simulated* durations decide the event order.
                for r in running.iter_mut() {
                    if r.finished.is_none() {
                        let done = match r.handle.take().expect("unjoined handle").join() {
                            Ok(done) => done,
                            // The belt inside the thread caught the unwind;
                            // this is the suspenders for a panic escaping it.
                            Err(p) => Done::Solo(Box::new(QueryDone {
                                result: Err(XbfsError::KernelPanic {
                                    payload: payload_to_string(&*p),
                                    range: None,
                                }),
                                events: Vec::new(),
                                ring: None,
                                observations: Vec::new(),
                            })),
                        };
                        let duration = done.duration();
                        r.finished = Some((r.start_s + duration, done));
                    }
                }

                let next_done = running
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| {
                        let (ca, _) = a.finished.as_ref().expect("joined");
                        let (cb, _) = b.finished.as_ref().expect("joined");
                        ca.total_cmp(cb).then(a.slot.cmp(&b.slot))
                    })
                    .map(|(i, r)| (i, r.finished.as_ref().expect("joined").0));
                let next_arrival = items.get(next_item).map(|it| it.at_s());

                let take_completion = match (next_done, next_arrival) {
                    (None, None) => break,
                    (Some(_), None) => true,
                    (None, Some(_)) => false,
                    // Completions fire before same-instant arrivals so the
                    // freed slot is visible to the arriving query.
                    (Some((_, c)), Some(a)) => c <= a,
                };

                if take_completion {
                    let (idx, completion_s) = next_done.expect("completion picked");
                    let r = running.swap_remove(idx);
                    let (_, done) = r.finished.expect("joined");
                    clock = clock.max(completion_s);
                    match done {
                        Done::Solo(done) => {
                            let QueryDone {
                                result,
                                events,
                                ring,
                                observations,
                            } = *done;
                            // Fold the query's observations into the master
                            // bandit at its completion *event* — simulated
                            // order, not thread-join order — so queries
                            // admitted later deterministically see them.
                            if let Some(p) = &self.policy {
                                p.apply(&observations);
                            }
                            self.complete(
                                &mut report,
                                &mut tele,
                                r.slot,
                                r.start_s,
                                completion_s,
                                result,
                                events,
                                ring,
                                &mut lost,
                            );
                        }
                        Done::Batch {
                            lanes,
                            events,
                            total_seconds: _,
                            ring,
                            observations,
                        } => {
                            if let Some(p) = &self.policy {
                                p.apply(&observations);
                            }
                            let mut batch_events = Some(events);
                            for (slot, result) in lanes {
                                // A lane that finished past its own
                                // deadline missed it — the batch clock is
                                // shared, the deadline check is not.
                                let result = match (result, requests[slot].deadline_s) {
                                    (Ok(run), Some(d)) => {
                                        let elapsed_s = completion_s - requests[slot].arrival_s;
                                        if elapsed_s > d {
                                            Err(XbfsError::DeadlineExceeded {
                                                budget_s: d,
                                                elapsed_s,
                                            })
                                        } else {
                                            Ok(run)
                                        }
                                    }
                                    (result, _) => result,
                                };
                                // The shared batch trace rides the lead
                                // lane; the per-lane `BatchLane` events in
                                // the service stream reconcile the rest.
                                // Each failed lane gets its own copy of the
                                // shared ring dump.
                                let events = batch_events.take().unwrap_or_default();
                                self.complete(
                                    &mut report,
                                    &mut tele,
                                    slot,
                                    r.start_s,
                                    completion_s,
                                    result,
                                    events,
                                    ring.clone(),
                                    &mut lost,
                                );
                            }
                        }
                    }
                    // The freed slot admits the longest-waiting queued
                    // queries (several, if deadline sheds cascade), batched
                    // up to the window when the policy allows.
                    while running.len() < capacity {
                        let Some(slot) = queue.pop_front() else { break };
                        report.events.push(TraceEvent::QueueDepth {
                            depth: queue.len() as u32,
                            at_s: completion_s,
                        });
                        tele.queue_depth(completion_s, queue.len() as u32);
                        if self.config.batching.enabled()
                            && lost.is_empty()
                            && self.config.batching.compat.admits(requests[slot])
                        {
                            let mut lanes = vec![slot];
                            while lanes.len() < self.config.batching.lane_limit() {
                                match queue.front() {
                                    Some(&next)
                                        if self.config.batching.compat.admits(requests[next]) =>
                                    {
                                        lanes.push(queue.pop_front().expect("peeked"));
                                        report.events.push(TraceEvent::QueueDepth {
                                            depth: queue.len() as u32,
                                            at_s: completion_s,
                                        });
                                        tele.queue_depth(completion_s, queue.len() as u32);
                                    }
                                    _ => break,
                                }
                            }
                            if lanes.len() > 1 {
                                if let Some(run) = self.try_start_batch(
                                    &mut report,
                                    &mut tele,
                                    scope,
                                    &lanes,
                                    &requests,
                                    completion_s,
                                    queue.len() as u32,
                                ) {
                                    running.push(run);
                                }
                                continue;
                            }
                        }
                        if let Some(run) = self.try_start(
                            &mut report,
                            &mut tele,
                            scope,
                            slot,
                            requests[slot],
                            completion_s,
                            queue.len() as u32,
                            &lost,
                        ) {
                            running.push(run);
                        }
                    }
                    tele.in_flight(completion_s, running.len() as u32);
                    continue;
                }

                let item = items[next_item];
                next_item += 1;
                let at_s = item.at_s();
                clock = clock.max(at_s);
                match item {
                    ScheduleItem::Drain { at_s } => {
                        drained_at = Some(*at_s);
                        if self.config.drain == DrainMode::Cancel {
                            while let Some(slot) = queue.pop_front() {
                                self.shed(
                                    &mut report,
                                    &mut tele,
                                    slot,
                                    "shutdown",
                                    Disposition::ShedShutdown,
                                    XbfsError::ShuttingDown,
                                    queue.len() as u32,
                                    *at_s,
                                );
                            }
                            report.events.push(TraceEvent::QueueDepth {
                                depth: 0,
                                at_s: *at_s,
                            });
                            tele.queue_depth(*at_s, 0);
                        }
                    }
                    ScheduleItem::Query(q) => {
                        let slot = query_index;
                        query_index += 1;
                        if drained_at.is_some_and(|d| at_s >= d) {
                            self.shed(
                                &mut report,
                                &mut tele,
                                slot,
                                "shutdown",
                                Disposition::ShedShutdown,
                                XbfsError::ShuttingDown,
                                queue.len() as u32,
                                at_s,
                            );
                        } else if running.len() < capacity {
                            report.admitted += 1;
                            tele.admit(at_s);
                            report.events.push(TraceEvent::QueryAdmitted {
                                query: q.id,
                                queue_depth: 0,
                                at_s,
                            });
                            if let Some(run) = self.try_start(
                                &mut report,
                                &mut tele,
                                scope,
                                slot,
                                q,
                                at_s,
                                0,
                                &lost,
                            ) {
                                running.push(run);
                            }
                        } else if queue.len() < queue_limit {
                            queue.push_back(slot);
                            report.admitted += 1;
                            tele.admit(at_s);
                            let depth = queue.len() as u32;
                            report.peak_queue_depth = report.peak_queue_depth.max(depth);
                            report.events.push(TraceEvent::QueryAdmitted {
                                query: q.id,
                                queue_depth: depth,
                                at_s,
                            });
                            report.events.push(TraceEvent::QueueDepth { depth, at_s });
                            tele.queue_depth(at_s, depth);
                        } else {
                            let depth = queue.len() as u32;
                            self.shed(
                                &mut report,
                                &mut tele,
                                slot,
                                "overloaded",
                                Disposition::ShedOverloaded,
                                XbfsError::Overloaded {
                                    queue_depth: depth,
                                    queue_limit: self.config.queue_limit,
                                },
                                depth,
                                at_s,
                            );
                        }
                    }
                }
                report.peak_in_flight = report.peak_in_flight.max(running.len() as u32);
                tele.in_flight(clock, running.len() as u32);
            }
        });

        report.makespan_s = clock;
        report.lost_devices = lost;
        tele.finish(&mut report, clock);
        Ok(report)
    }

    /// Record a shed: outcome, counter, and the `QueryShed` event.
    #[allow(clippy::too_many_arguments)] // the full shed context
    fn shed(
        &self,
        report: &mut ServiceReport,
        tele: &mut Telemetry,
        slot: usize,
        reason: &'static str,
        disposition: Disposition,
        error: XbfsError,
        queue_depth: u32,
        at_s: f64,
    ) {
        match disposition {
            Disposition::ShedOverloaded => report.shed_overloaded += 1,
            Disposition::ShedShutdown => report.shed_shutdown += 1,
            Disposition::DeadlineMissed => report.deadline_missed += 1,
            _ => {}
        }
        tele.shed(at_s, disposition == Disposition::DeadlineMissed);
        let o = &mut report.outcomes[slot];
        o.disposition = disposition;
        o.completion_s = Some(at_s);
        o.wait_s = (at_s - o.arrival_s).max(0.0);
        report.events.push(TraceEvent::QueryShed {
            query: o.id,
            reason,
            queue_depth,
            at_s,
        });
        o.error = Some(error);
    }

    /// Try to start `req` at `now_s`: shed it if its deadline already
    /// expired while queued, otherwise spawn its worker thread.
    #[allow(clippy::too_many_arguments)] // the full admission context
    fn try_start<'scope, 'env>(
        &'env self,
        report: &mut ServiceReport,
        tele: &mut Telemetry,
        scope: &'scope std::thread::Scope<'scope, 'env>,
        slot: usize,
        req: &'env QueryRequest,
        now_s: f64,
        queue_depth: u32,
        lost: &[(Device, f64)],
    ) -> Option<Running<'scope>> {
        let wait_s = (now_s - req.arrival_s).max(0.0);
        let mut config = self.config.resilience.clone();
        if let Some(d) = req.deadline_s {
            let remaining = d - wait_s;
            if remaining <= 0.0 {
                self.shed(
                    report,
                    tele,
                    slot,
                    "deadline",
                    Disposition::DeadlineMissed,
                    XbfsError::DeadlineExceeded {
                        budget_s: d,
                        elapsed_s: wait_s,
                    },
                    queue_depth,
                    now_s,
                );
                return None;
            }
            config.deadline_s = Some(match config.deadline_s {
                Some(base) => base.min(remaining),
                None => remaining,
            });
        }
        if let Some(dir) = &self.config.spill_dir {
            if config.checkpoint.interval_levels > 0 {
                config.checkpoint.spill = Some(format!("{dir}/query-{id}.ck.json", id = req.id));
            }
        }
        report.events.push(TraceEvent::QueryStart {
            query: req.id,
            wait_s,
            at_s: now_s,
        });
        tele.start(now_s, wait_s);
        {
            let o = &mut report.outcomes[slot];
            o.start_s = Some(now_s);
            o.wait_s = wait_s;
        }
        let lost_devices: Vec<Device> = lost.iter().map(|(d, _)| *d).collect();
        let keep_trace = self.config.keep_query_traces;
        let sample = self.config.trace_sample;
        let ring_capacity = self.config.flight_recorder;
        // The snapshot is taken HERE, on the event-loop thread, so the
        // bandit state a query sees is a pure function of admission order
        // — never of wall-clock thread interleaving.
        let policy_snapshot: Option<OnlineBandit> = self.policy.as_ref().map(|p| p.snapshot());
        let handle = scope.spawn(move || {
            let sink = MemorySink::new();
            // Head sampling: the keep/drop decision is sealed here, once,
            // from the seeded hash — a disabled buffer (not kept, or
            // traces off entirely) costs nothing on the hot path.
            let buffered = SamplingSink::for_query(
                &sink,
                sample.seed,
                req.id,
                if keep_trace { sample.rate } else { 0.0 },
            );
            let ring = RingSink::new(ring_capacity);
            let tee = TeeSink::new(&buffered, &ring);
            let plan = req.plan();
            let cell = policy_snapshot.map(|b| std::cell::RefCell::new(PolicyRun::new(b)));
            let result = catch_unwind(AssertUnwindSafe(|| {
                let mut session = RunSession::on_platform(
                    &self.csr,
                    &self.cpu,
                    &self.gpu,
                    &self.link,
                    &self.params,
                )
                .source(req.source)
                .fault_plan(&plan)
                .resilience(config)
                .presume_lost(&lost_devices);
                if tee.enabled() {
                    session = session.sink(&tee);
                }
                if let Some(cell) = &cell {
                    session = session.policy(cell);
                }
                session.run()
            }))
            .unwrap_or_else(|p| {
                Err(XbfsError::KernelPanic {
                    payload: payload_to_string(&*p),
                    range: None,
                })
            });
            // Partial logs from failed or degraded queries still apply —
            // the levels they priced ran deterministically before the
            // error, and discarding them would make learning depend on
            // failure handling.
            let observations = cell
                .map(|c| c.into_inner().take_observations())
                .unwrap_or_default();
            Done::Solo(Box::new(QueryDone {
                result,
                events: sink.take(),
                ring: (ring_capacity > 0).then(|| (ring.events(), ring.dropped())),
                observations,
            }))
        });
        Some(Running {
            slot,
            start_s: now_s,
            handle: Some(handle),
            finished: None,
        })
    }

    /// Start `lanes` (outcome slots popped from the queue front) as one
    /// lane-packed batch occupying a single capacity slot. Lanes whose
    /// deadline already expired while queued are shed here, exactly as a
    /// solo start would shed them; if fewer than two lanes survive, the
    /// remainder runs solo through [`Self::try_start`].
    #[allow(clippy::too_many_arguments)] // the full dispatch context
    fn try_start_batch<'scope, 'env>(
        &'env self,
        report: &mut ServiceReport,
        tele: &mut Telemetry,
        scope: &'scope std::thread::Scope<'scope, 'env>,
        lanes: &[usize],
        requests: &[&'env QueryRequest],
        now_s: f64,
        queue_depth: u32,
    ) -> Option<Running<'scope>> {
        let mut live: Vec<usize> = Vec::with_capacity(lanes.len());
        for &slot in lanes {
            let req = requests[slot];
            let wait_s = (now_s - req.arrival_s).max(0.0);
            if let Some(d) = req.deadline_s {
                if d - wait_s <= 0.0 {
                    self.shed(
                        report,
                        tele,
                        slot,
                        "deadline",
                        Disposition::DeadlineMissed,
                        XbfsError::DeadlineExceeded {
                            budget_s: d,
                            elapsed_s: wait_s,
                        },
                        queue_depth,
                        now_s,
                    );
                    continue;
                }
            }
            live.push(slot);
        }
        match live.len() {
            0 => return None,
            1 => {
                return self.try_start(
                    report,
                    tele,
                    scope,
                    live[0],
                    requests[live[0]],
                    now_s,
                    queue_depth,
                    &[],
                )
            }
            _ => {}
        }
        tele.batch(now_s, live.len() as u32);

        let window = self.config.batching.window;
        let mut sources: Vec<VertexId> = Vec::with_capacity(live.len());
        for (lane, &slot) in live.iter().enumerate() {
            let req = requests[slot];
            let wait_s = (now_s - req.arrival_s).max(0.0);
            report.events.push(TraceEvent::QueryStart {
                query: req.id,
                wait_s,
                at_s: now_s,
            });
            tele.start(now_s, wait_s);
            report.events.push(TraceEvent::BatchLane {
                lane: lane as u32,
                query: req.id,
                source: req.source,
                at_s: now_s,
            });
            let o = &mut report.outcomes[slot];
            o.start_s = Some(now_s);
            o.wait_s = wait_s;
            sources.push(req.source);
        }

        // Per-lane deadlines are settled at completion against the shared
        // batch clock; only the base resilience deadline bounds the batch.
        let config = self.config.resilience.clone();
        let keep_trace = self.config.keep_query_traces;
        let sample = self.config.trace_sample;
        let ring_capacity = self.config.flight_recorder;
        // The batch shares one trace; its sampling decision rides the lead
        // lane's query id so a replay keeps the same batches.
        let lead_query = requests[live[0]].id;
        // Snapshot on the event-loop thread — see `try_start`.
        let policy_snapshot: Option<OnlineBandit> = self.policy.as_ref().map(|p| p.snapshot());
        let handle = scope.spawn(move || {
            let sink = MemorySink::new();
            let buffered = SamplingSink::for_query(
                &sink,
                sample.seed,
                lead_query,
                if keep_trace { sample.rate } else { 0.0 },
            );
            let ring = RingSink::new(ring_capacity);
            let tee = TeeSink::new(&buffered, &ring);
            let cell = policy_snapshot.map(|b| std::cell::RefCell::new(PolicyRun::new(b)));
            let result = catch_unwind(AssertUnwindSafe(|| {
                let mut session = BatchSession::on_platform(
                    &self.csr,
                    &self.cpu,
                    &self.gpu,
                    &self.link,
                    &self.params,
                )
                .sources(&sources)
                .window(window)
                .resilience(config);
                if tee.enabled() {
                    session = session.sink(&tee);
                }
                if let Some(cell) = &cell {
                    session = session.policy(cell);
                }
                session.run()
            }))
            .unwrap_or_else(|p| {
                Err(XbfsError::KernelPanic {
                    payload: payload_to_string(&*p),
                    range: None,
                })
            });
            let ring_dump = (ring_capacity > 0).then(|| (ring.events(), ring.dropped()));
            let observations = cell
                .map(|c| c.into_inner().take_observations())
                .unwrap_or_default();
            match result {
                Ok(batch) => Done::Batch {
                    total_seconds: batch.total_seconds,
                    lanes: live
                        .iter()
                        .zip(batch.lanes)
                        .map(|(&slot, lane)| (slot, Ok(lane.run)))
                        .collect(),
                    events: sink.take(),
                    ring: ring_dump,
                    observations,
                },
                Err(e) => {
                    let total_seconds = match &e {
                        XbfsError::DeadlineExceeded { elapsed_s, .. } => *elapsed_s,
                        _ => 0.0,
                    };
                    Done::Batch {
                        total_seconds,
                        lanes: live.iter().map(|&slot| (slot, Err(e.clone()))).collect(),
                        events: sink.take(),
                        ring: ring_dump,
                        observations,
                    }
                }
            }
        });
        Some(Running {
            slot: lanes[0],
            start_s: now_s,
            handle: Some(handle),
            finished: None,
        })
    }

    /// Process one completion: counters, the `QueryEnd` event, telemetry,
    /// the post-mortem dump for typed errors, and the promotion of
    /// permanent device losses to the shared ledger.
    #[allow(clippy::too_many_arguments)] // the full completion context
    fn complete(
        &self,
        report: &mut ServiceReport,
        tele: &mut Telemetry,
        slot: usize,
        start_s: f64,
        completion_s: f64,
        result: Result<RecoveredRun, XbfsError>,
        events: Vec<TraceEvent>,
        ring: Option<RingDump>,
        lost: &mut Vec<(Device, f64)>,
    ) {
        if let Ok(run) = &result {
            tele.corruption(
                completion_s,
                run.report.corruption_detected,
                run.report.corruption_repairs,
            );
        }
        let (outcome_label, rung_label) = match &result {
            Ok(run) => {
                // Permanent losses join the service-wide ledger *now*, in
                // completion order — queries already started keep their
                // own view, queries starting later skip the dead device.
                for t in &run.report.breaker_transitions {
                    if t.cause == TransitionCause::DeviceLost
                        && t.to == BreakerState::Open
                        && !lost.iter().any(|(d, _)| *d == t.device)
                    {
                        lost.push((t.device, start_s + t.at_s));
                    }
                }
                let degraded = run.report.rung != Rung::CrossCpuGpu;
                if degraded {
                    report.degraded += 1;
                } else {
                    report.served += 1;
                }
                (
                    if degraded { "degraded" } else { "served" },
                    run.report.rung.label(),
                )
            }
            Err(XbfsError::DeadlineExceeded { .. }) => {
                report.deadline_missed += 1;
                ("deadline-missed", "none")
            }
            Err(_) => {
                report.failed += 1;
                ("failed", "none")
            }
        };
        let o = &mut report.outcomes[slot];
        o.completion_s = Some(completion_s);
        match result {
            Ok(run) => {
                o.disposition = Disposition::Served {
                    degraded: outcome_label == "degraded",
                };
                o.run = Some(run);
            }
            Err(e) => {
                o.disposition = if matches!(e, XbfsError::DeadlineExceeded { .. }) {
                    Disposition::DeadlineMissed
                } else {
                    Disposition::Failed
                };
                o.error = Some(e);
            }
        }
        report.events.push(TraceEvent::QueryEnd {
            query: o.id,
            outcome: outcome_label,
            rung: rung_label,
            at_s: completion_s,
        });
        tele.complete(
            completion_s,
            (completion_s - o.arrival_s).max(0.0),
            o.disposition == Disposition::DeadlineMissed,
        );
        if let (Some(error), Some((ring_events, dropped))) = (&o.error, ring) {
            report.postmortems.push(PostMortem {
                query: o.id,
                source: o.source,
                disposition: o.disposition.name(),
                error: error.to_string(),
                start_s,
                completion_s,
                capacity: self.config.flight_recorder,
                dropped,
                events: ring_events,
            });
        }
        if self.config.keep_query_traces {
            report.query_traces.push(QueryTrace {
                query: o.id,
                start_s,
                events,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::pick_source;
    use xbfs_engine::{validate, FixedMN};

    fn service(config: ServiceConfig) -> (QueryService, u32) {
        let g = Arc::new(xbfs_graph::rmat::rmat_csr(9, 16));
        let src = pick_source(&g, 3).unwrap();
        let params = CrossParams {
            handoff: FixedMN::new(64.0, 64.0),
            gpu: FixedMN::new(14.0, 24.0),
        };
        (
            QueryService::new(
                g,
                ArchSpec::cpu_sandy_bridge(),
                ArchSpec::gpu_k20x(),
                Link::pcie3(),
                params,
                config,
            ),
            src,
        )
    }

    #[test]
    fn healthy_queries_serve_and_validate() {
        let (svc, src) = service(ServiceConfig::default());
        let schedule = vec![
            ScheduleItem::Query(QueryRequest::builder(0, src).arrival(0.0).build()),
            ScheduleItem::Query(QueryRequest::builder(1, src).arrival(0.0).build()),
        ];
        let report = svc.run_schedule(&schedule).expect("schedule");
        assert_eq!(report.admitted, 2);
        assert_eq!(report.served, 2);
        for o in &report.outcomes {
            let run = o.run.as_ref().expect("served run");
            assert_eq!(validate(svc.csr(), &run.output), Ok(()));
        }
        assert!(report.makespan_s > 0.0);
    }

    #[test]
    fn overload_sheds_with_queue_context() {
        let (svc, src) = service(ServiceConfig {
            capacity: 1,
            queue_limit: 1,
            ..ServiceConfig::default()
        });
        let schedule: Vec<ScheduleItem> = (0..3)
            .map(|i| ScheduleItem::Query(QueryRequest::builder(i, src).arrival(0.0).build()))
            .collect();
        let report = svc.run_schedule(&schedule).expect("schedule");
        assert_eq!(report.admitted, 2);
        assert_eq!(report.shed_overloaded, 1);
        assert_eq!(report.served, 2, "queued query runs after the first");
        let shed = report.outcome(2).expect("third query");
        assert_eq!(shed.disposition, Disposition::ShedOverloaded);
        assert_eq!(
            shed.error,
            Some(XbfsError::Overloaded {
                queue_depth: 1,
                queue_limit: 1
            })
        );
    }

    #[test]
    fn queued_deadline_expiry_sheds_without_running() {
        let (svc, src) = service(ServiceConfig {
            capacity: 1,
            queue_limit: 4,
            ..ServiceConfig::default()
        });
        // Query 1 waits behind query 0 (which takes ~ms of simulated
        // time); an absurdly tight deadline expires in the queue.
        let mut tight = QueryRequest::builder(1, src).arrival(0.0).build();
        tight.deadline_s = Some(1e-9);
        let schedule = vec![
            ScheduleItem::Query(QueryRequest::builder(0, src).arrival(0.0).build()),
            ScheduleItem::Query(tight),
        ];
        let report = svc.run_schedule(&schedule).expect("schedule");
        let shed = report.outcome(1).expect("tight query");
        assert_eq!(shed.disposition, Disposition::DeadlineMissed);
        assert!(shed.start_s.is_none(), "never ran");
        assert!(matches!(
            shed.error,
            Some(XbfsError::DeadlineExceeded { .. })
        ));
        assert_eq!(report.deadline_missed, 1);
    }

    #[test]
    fn drain_refuses_later_arrivals() {
        let (svc, src) = service(ServiceConfig::default());
        let schedule = vec![
            ScheduleItem::Query(QueryRequest::builder(0, src).arrival(0.0).build()),
            ScheduleItem::Drain { at_s: 0.5 },
            ScheduleItem::Query(QueryRequest::builder(1, src).arrival(1.0).build()),
        ];
        let report = svc.run_schedule(&schedule).expect("schedule");
        assert_eq!(report.served, 1);
        assert_eq!(report.shed_shutdown, 1);
        let refused = report.outcome(1).expect("late query");
        assert_eq!(refused.disposition, Disposition::ShedShutdown);
        assert_eq!(refused.error, Some(XbfsError::ShuttingDown));
    }

    #[test]
    fn schedule_replays_deterministically() {
        let (svc, src) = service(ServiceConfig {
            capacity: 2,
            queue_limit: 2,
            keep_query_traces: true,
            ..ServiceConfig::default()
        });
        let schedule: Vec<ScheduleItem> = (0..6)
            .map(|i| {
                ScheduleItem::Query(
                    QueryRequest::builder(i, src)
                        .arrival(1e-4 * i as f64)
                        .build(),
                )
            })
            .collect();
        let a = svc.run_schedule(&schedule).expect("first replay");
        let b = svc.run_schedule(&schedule).expect("second replay");
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn request_json_lines_round_trip() {
        let mut req = QueryRequest::builder(7, 3).arrival(0.25).build();
        req.deadline_s = Some(2.0);
        let item = ScheduleItem::Query(req);
        let line = item.to_json_line();
        assert_eq!(ScheduleItem::from_json_line(&line).unwrap(), item);

        let drain = ScheduleItem::Drain { at_s: 1.5 };
        let line = drain.to_json_line();
        assert_eq!(ScheduleItem::from_json_line(&line).unwrap(), drain);

        // Minimal request line: optional fields default.
        let parsed =
            ScheduleItem::from_json_line(r#"{"id":1,"source":0,"arrival_s":0.0}"#).unwrap();
        match parsed {
            ScheduleItem::Query(q) => {
                assert_eq!(q.deadline_s, None);
                assert_eq!(q.fault_plan, None);
                assert_eq!(q.plan(), FaultPlan::none());
            }
            other => panic!("unexpected item {other:?}"),
        }

        assert!(ScheduleItem::from_json_line("not json").is_err());
    }

    #[test]
    fn zero_capacity_is_a_typed_error() {
        let (svc, src) = service(ServiceConfig {
            capacity: 0,
            ..ServiceConfig::default()
        });
        let schedule = vec![ScheduleItem::Query(
            QueryRequest::builder(0, src).arrival(0.0).build(),
        )];
        assert!(matches!(
            svc.run_schedule(&schedule),
            Err(XbfsError::InvalidArgument { .. })
        ));
    }

    /// A same-instant burst: one query takes the single slot, the rest
    /// queue behind it (or shed when the queue is full).
    fn burst(src: u32, n: u64) -> Vec<ScheduleItem> {
        (0..n)
            .map(|i| ScheduleItem::Query(QueryRequest::builder(i, src).arrival(0.0).build()))
            .collect()
    }

    #[test]
    fn batched_burst_beats_unbatched_with_identical_shed_outcomes() {
        let base = ServiceConfig {
            capacity: 1,
            queue_limit: 4,
            ..ServiceConfig::default()
        };
        let batched_cfg = ServiceConfig {
            batching: BatchPolicy::windowed(8),
            ..base.clone()
        };
        // 8 arrivals, 1 slot, queue of 4: three shed overloaded either way.
        let (svc, src) = service(base);
        let schedule = burst(src, 8);
        let plain = svc.run_schedule(&schedule).expect("unbatched");
        let (svc, _) = service(batched_cfg);
        let batched = svc.run_schedule(&schedule).expect("batched");

        for (p, b) in plain.outcomes.iter().zip(&batched.outcomes) {
            assert_eq!(p.id, b.id);
            assert_eq!(
                p.disposition, b.disposition,
                "batching must not change query {}'s terminal state",
                p.id
            );
        }
        assert_eq!(plain.shed_overloaded, 3);
        assert_eq!(batched.shed_overloaded, 3);
        assert_eq!(batched.served, 5);
        assert!(
            batched.makespan_s < plain.makespan_s,
            "batched burst {} s must beat unbatched {} s",
            batched.makespan_s,
            plain.makespan_s
        );
        for o in &batched.outcomes {
            if let Some(run) = &o.run {
                assert_eq!(validate(svc.csr(), &run.output), Ok(()));
            }
        }
    }

    #[test]
    fn batch_lane_events_reconcile_queries() {
        let (svc, src) = service(ServiceConfig {
            capacity: 1,
            queue_limit: 8,
            keep_query_traces: true,
            batching: BatchPolicy::windowed(4),
            ..ServiceConfig::default()
        });
        let report = svc.run_schedule(&burst(src, 5)).expect("batched burst");
        assert_eq!(report.served, 5);
        // Queries 1..=4 queued behind query 0 and rode one batch: one
        // BatchLane reconciliation event each in the service stream.
        let lanes: Vec<(u32, u64)> = report
            .events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::BatchLane { lane, query, .. } => Some((*lane, *query)),
                _ => None,
            })
            .collect();
        assert_eq!(lanes, vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
        // The shared batch trace rides the lead lane's query trace.
        let lead = report
            .query_traces
            .iter()
            .find(|t| t.query == 1)
            .expect("lead lane trace");
        assert!(lead
            .events
            .iter()
            .any(|e| matches!(e, TraceEvent::BatchBegin { lanes: 4, .. })));
        assert!(lead
            .events
            .iter()
            .any(|e| matches!(e, TraceEvent::BatchEnd { .. })));
    }

    #[test]
    fn batch_settles_each_lanes_deadline_separately() {
        let base = ServiceConfig {
            capacity: 1,
            queue_limit: 8,
            ..ServiceConfig::default()
        };
        // Measure one solo traversal to calibrate the tight deadline.
        let (svc, src) = service(base.clone());
        let solo = svc.run_schedule(&burst(src, 1)).expect("calibration");
        let solo_s = solo.outcome(0).unwrap().completion_s.unwrap();

        // Query 1's deadline survives the queue wait (~solo_s) but not the
        // batch completion; query 2 has no deadline and is served.
        let tight = QueryRequest::builder(1, src).deadline(solo_s * 1.2).build();
        let schedule = vec![
            ScheduleItem::Query(QueryRequest::builder(0, src).arrival(0.0).build()),
            ScheduleItem::Query(tight),
            ScheduleItem::Query(QueryRequest::builder(2, src).arrival(0.0).build()),
        ];
        let (svc, _) = service(ServiceConfig {
            batching: BatchPolicy::windowed(4),
            ..base
        });
        let report = svc.run_schedule(&schedule).expect("batched schedule");
        let missed = report.outcome(1).expect("tight lane");
        assert_eq!(missed.disposition, Disposition::DeadlineMissed);
        assert!(missed.start_s.is_some(), "the lane ran inside the batch");
        assert!(matches!(
            missed.error,
            Some(XbfsError::DeadlineExceeded { .. })
        ));
        let served = report.outcome(2).expect("free lane");
        assert_eq!(served.disposition, Disposition::Served { degraded: false });
        assert_eq!(report.deadline_missed, 1);
    }

    /// A completion landing exactly on the deadline instant is MET on both
    /// the solo path (recovery's budget check) and the batch-lane
    /// settlement — both compare strictly (`elapsed > deadline`), so the
    /// boundary tie-breaks identically no matter which path served the
    /// query.
    #[test]
    fn deadline_boundary_instant_is_met_on_solo_and_batch_paths() {
        let base = ServiceConfig {
            capacity: 1,
            queue_limit: 8,
            ..ServiceConfig::default()
        };

        // Calibrate the exact solo completion instant.
        let (svc, src) = service(base.clone());
        let solo = svc.run_schedule(&burst(src, 1)).expect("calibration");
        let solo_s = solo.outcome(0).unwrap().completion_s.unwrap();

        let (svc, _) = service(base.clone());
        let exact = vec![ScheduleItem::Query(
            QueryRequest::builder(0, src).deadline(solo_s).build(),
        )];
        let report = svc.run_schedule(&exact).expect("solo boundary");
        assert_eq!(
            report.outcome(0).unwrap().disposition,
            Disposition::Served { degraded: false },
            "solo: elapsed == deadline is MET"
        );

        // One part in 1e12 tighter and the same query misses.
        let (svc, _) = service(base.clone());
        let tight = vec![ScheduleItem::Query(
            QueryRequest::builder(0, src)
                .deadline(solo_s * (1.0 - 1e-12))
                .build(),
        )];
        let report = svc.run_schedule(&tight).expect("solo tight");
        assert_eq!(
            report.outcome(0).unwrap().disposition,
            Disposition::DeadlineMissed
        );

        // Batch path: calibrate the shared completion instant of the batch
        // riding behind a solo query, then pin the same boundary. Per-lane
        // deadlines never bound the batch run itself, so the calibration
        // schedule completes at the identical instant.
        let batched = ServiceConfig {
            batching: BatchPolicy::windowed(4),
            ..base
        };
        let schedule = |deadline: Option<f64>| {
            let mut q1 = QueryRequest::builder(1, src).arrival(0.0).build();
            q1.deadline_s = deadline;
            vec![
                ScheduleItem::Query(QueryRequest::builder(0, src).arrival(0.0).build()),
                ScheduleItem::Query(q1),
                ScheduleItem::Query(QueryRequest::builder(2, src).arrival(0.0).build()),
            ]
        };
        let (svc, _) = service(batched.clone());
        let cal = svc
            .run_schedule(&schedule(None))
            .expect("batch calibration");
        let batch_done_s = cal.outcome(1).unwrap().completion_s.unwrap();

        let (svc, _) = service(batched.clone());
        let report = svc
            .run_schedule(&schedule(Some(batch_done_s)))
            .expect("batch boundary");
        let lane = report.outcome(1).expect("boundary lane");
        assert!(lane.start_s.is_some(), "the lane ran inside the batch");
        assert_eq!(
            lane.disposition,
            Disposition::Served { degraded: false },
            "batch lane: elapsed == deadline is MET, matching the solo path"
        );

        let (svc, _) = service(batched);
        let report = svc
            .run_schedule(&schedule(Some(batch_done_s * (1.0 - 1e-12))))
            .expect("batch tight");
        assert_eq!(
            report.outcome(1).unwrap().disposition,
            Disposition::DeadlineMissed
        );
    }

    #[test]
    fn faulty_queries_never_join_a_batch() {
        let (svc, src) = service(ServiceConfig {
            capacity: 1,
            queue_limit: 8,
            batching: BatchPolicy::windowed(4),
            ..ServiceConfig::default()
        });
        let faulty = QueryRequest::builder(1, src)
            .fault_plan(FaultPlan::none())
            .build();
        let schedule = vec![
            ScheduleItem::Query(QueryRequest::builder(0, src).arrival(0.0).build()),
            ScheduleItem::Query(faulty),
            ScheduleItem::Query(QueryRequest::builder(2, src).arrival(0.0).build()),
            ScheduleItem::Query(QueryRequest::builder(3, src).arrival(0.0).build()),
        ];
        let report = svc.run_schedule(&schedule).expect("schedule");
        assert_eq!(report.served, 4);
        // The fault-carrying query at the queue front ran solo; only the
        // two behind it shared a batch.
        let lanes: Vec<u64> = report
            .events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::BatchLane { query, .. } => Some(*query),
                _ => None,
            })
            .collect();
        assert_eq!(lanes, vec![2, 3]);
    }

    #[test]
    fn oversized_batch_lanes_is_a_typed_error() {
        let (svc, src) = service(ServiceConfig {
            batching: BatchPolicy {
                window: 4,
                max_lanes: 65,
                compat: BatchCompat::FaultFree,
            },
            ..ServiceConfig::default()
        });
        let schedule = vec![ScheduleItem::Query(
            QueryRequest::builder(0, src).arrival(0.0).build(),
        )];
        assert!(matches!(
            svc.run_schedule(&schedule),
            Err(XbfsError::InvalidArgument { .. })
        ));
    }

    #[test]
    fn telemetry_means_match_a_hand_computed_schedule() {
        // Queue: 0 on [0,1), 2 on [1,3), 1 on [3,4), 0 on [4,5] →
        // area 5 over span 5 → mean 1.0. In-flight: 1 on [0,2), 2 on
        // [2,5] → area 8 over 5 → mean 1.6.
        let mut tele = Telemetry::new(&ServiceConfig::default());
        tele.queue_depth(1.0, 2);
        tele.queue_depth(3.0, 1);
        tele.queue_depth(4.0, 0);
        tele.in_flight(0.0, 1);
        tele.in_flight(2.0, 2);
        let mut report = ServiceReport::default();
        tele.finish(&mut report, 5.0);
        assert_eq!(report.mean_queue_depth, 1.0);
        assert_eq!(report.mean_in_flight, 1.6);
    }

    #[test]
    fn telemetry_defaults_stay_off_and_means_are_recorded() {
        let (svc, src) = service(ServiceConfig {
            capacity: 1,
            queue_limit: 4,
            ..ServiceConfig::default()
        });
        let schedule: Vec<ScheduleItem> = (0..3)
            .map(|i| ScheduleItem::Query(QueryRequest::builder(i, src).arrival(0.0).build()))
            .collect();
        let report = svc.run_schedule(&schedule).expect("schedule");
        // Off by default: no windows, no SLO verdict, no dumps.
        assert!(report.timeseries.is_empty());
        assert!(report.slo.is_none());
        assert!(report.postmortems.is_empty());
        // The always-on gauges still integrate: one slot busy the whole
        // makespan, a queue that drains as slots free.
        assert!(report.mean_in_flight > 0.0);
        assert!(report.mean_in_flight <= 1.0);
        assert!(report.mean_queue_depth > 0.0);
        assert!(f64::from(report.peak_queue_depth) >= report.mean_queue_depth);
    }

    #[test]
    fn snapshot_windows_replay_byte_identically_and_reconcile_with_the_report() {
        let config = ServiceConfig {
            capacity: 1,
            queue_limit: 8,
            snapshot: SnapshotPolicy::every(0.001),
            slo: Some(SloPolicy {
                deadline_hit_ratio: 0.5,
                latency_objective_s: 0.002,
                latency_hit_ratio: 0.5,
            }),
            ..ServiceConfig::default()
        };
        let run = || {
            let (svc, src) = service(config.clone());
            let schedule: Vec<ScheduleItem> = (0..6)
                .map(|i| {
                    ScheduleItem::Query(
                        QueryRequest::builder(i, src)
                            .arrival(i as f64 * 1e-4)
                            .build(),
                    )
                })
                .collect();
            svc.run_schedule(&schedule).expect("schedule")
        };
        let a = run();
        let b = run();
        assert!(!a.timeseries.is_empty(), "windows were closed");
        let slo_a = a.slo.as_ref().expect("slo evaluated");
        let lines_a =
            crate::observe::timeseries::timeseries_json_lines(&a.timeseries, a.slo.as_ref());
        let lines_b =
            crate::observe::timeseries::timeseries_json_lines(&b.timeseries, b.slo.as_ref());
        assert_eq!(lines_a, lines_b, "telemetry replays byte-for-byte");
        // Window totals reconcile with the report's counters.
        let admitted: u64 = a.timeseries.iter().map(|w| w.admitted).sum();
        let completed: u64 = a.timeseries.iter().map(|w| w.completed).sum();
        assert_eq!(admitted, u64::from(a.admitted));
        assert_eq!(
            completed,
            u64::from(a.served + a.degraded + a.failed) + u64::from(a.deadline_missed)
                - a.timeseries.iter().map(|w| w.deadline_shed).sum::<u64>()
        );
        assert_eq!(slo_a.latency_eligible, completed);
    }

    #[test]
    fn flight_recorder_dump_reconciles_with_the_kept_trace() {
        // A deadline that lets the query start but expire mid-run gives a
        // deterministic typed error with a real event stream behind it.
        let config = ServiceConfig {
            capacity: 1,
            keep_query_traces: true,
            flight_recorder: 4096,
            ..ServiceConfig::default()
        };
        let (svc, src) = service(config);
        let schedule = vec![ScheduleItem::Query(
            QueryRequest::builder(0, src)
                .arrival(0.0)
                .deadline(1e-7)
                .build(),
        )];
        let report = svc.run_schedule(&schedule).expect("schedule");
        assert_eq!(report.deadline_missed, 1);
        let pm = report.postmortems.first().expect("post-mortem attached");
        assert_eq!(pm.query, 0);
        assert_eq!(pm.disposition, "deadline-missed");
        assert_eq!(pm.capacity, 4096);
        // Capacity exceeded nothing, so the dump IS the query's trace.
        assert_eq!(pm.dropped, 0);
        let qt = &report.query_traces[0];
        assert_eq!(pm.events, qt.events);
        assert!(!pm.events.is_empty());
        // The JSON artifact round-trips through serde_json.
        let v: serde_json::Value = serde_json::from_str(&pm.to_json()).expect("valid json");
        assert_eq!(v["query"], 0);
        assert_eq!(v["events"].as_array().unwrap().len(), pm.events.len());

        // A small ring keeps exactly the trace's tail.
        let (svc, src) = service(ServiceConfig {
            capacity: 1,
            keep_query_traces: true,
            flight_recorder: 4,
            ..ServiceConfig::default()
        });
        let schedule = vec![ScheduleItem::Query(
            QueryRequest::builder(0, src)
                .arrival(0.0)
                .deadline(1e-7)
                .build(),
        )];
        let report = svc.run_schedule(&schedule).expect("schedule");
        let pm = report.postmortems.first().expect("post-mortem attached");
        let qt = &report.query_traces[0];
        assert_eq!(pm.events.len(), 4.min(qt.events.len()));
        assert_eq!(pm.dropped, qt.events.len() as u64 - pm.events.len() as u64);
        assert_eq!(
            pm.events[..],
            qt.events[qt.events.len() - pm.events.len()..]
        );
    }

    #[test]
    fn trace_sampling_is_deterministic_and_served_queries_get_no_dump() {
        let config = ServiceConfig {
            capacity: 1,
            queue_limit: 8,
            keep_query_traces: true,
            flight_recorder: 16,
            trace_sample: TraceSamplePolicy { rate: 0.5, seed: 7 },
            ..ServiceConfig::default()
        };
        let run = || {
            let (svc, src) = service(config.clone());
            let schedule: Vec<ScheduleItem> = (0..8)
                .map(|i| ScheduleItem::Query(QueryRequest::builder(i, src).arrival(0.0).build()))
                .collect();
            svc.run_schedule(&schedule).expect("schedule")
        };
        let a = run();
        let b = run();
        // Served queries never produce post-mortems, even with the
        // recorder on.
        assert_eq!(a.served + a.degraded, 8);
        assert!(a.postmortems.is_empty());
        // Sampling kept a strict subset, decided identically on replay.
        let kept = |r: &ServiceReport| -> Vec<u64> {
            r.query_traces
                .iter()
                .filter(|t| !t.events.is_empty())
                .map(|t| t.query)
                .collect()
        };
        assert_eq!(kept(&a), kept(&b), "keep/drop decisions replay");
        assert!(kept(&a).len() < 8, "rate 0.5 drops someone in 8 queries");
        let expected: Vec<u64> = (0..8)
            .filter(|&id| xbfs_engine::trace::SamplingSink::would_keep(7, id, 0.5))
            .collect();
        assert_eq!(kept(&a), expected, "decision matches the seeded hash");
    }
}
