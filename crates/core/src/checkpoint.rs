//! Level-granular checkpoint/resume for cross-architecture traversals.
//!
//! BFS is level-synchronous: between levels the entire traversal is six
//! plain values (parent map, level map, frontier, counters) plus the
//! runtime's clock and fault-stream position. A [`LevelCheckpoint`]
//! captures exactly that at a level boundary, so the recovery ladder can
//! restart a failed rung — or a whole process — from level ℓ instead of
//! level 0. The capture cadence and optional on-disk spill are configured
//! by a [`CheckpointPolicy`].
//!
//! Two invariants make resume sound:
//!
//! * **State-machine fidelity** — the checkpoint stores the engine's
//!   [`TraversalState`] verbatim plus the cross-rung handoff latch and
//!   placement log, so resuming on the *same* rung replays the identical
//!   traversal. Resuming on a *lower* rung translates the device-resident
//!   frontier to host (queue) form in ascending vertex order — the same
//!   order a bottom-up level would have produced it in.
//! * **Fault-stream fidelity** — the checkpoint stores the
//!   [`FaultCursor`], so a resumed session consumes exactly the fault
//!   suffix the uninterrupted run would have seen.
//!
//! A checkpoint cut while the state lives on the GPU is not durable until
//! it is drained over the link; the capture path charges that pullback
//! ([`Link::pullback_bytes`]) on the simulated clock before the
//! checkpoint exists.

use crate::cross::{CrossDriver, CrossParams, Placement};
use crate::health::{BreakerPolicy, HealthSnapshot};
use crate::recovery::{reference_sequential_penalty, Rung, JITTER_SALT};
use serde::{Deserialize, Serialize};
use xbfs_archsim::fault::{FaultCursor, FaultEvent, FaultOp, FaultPlan, FaultSession};
use xbfs_archsim::{cost, ArchSpec, Link};
use xbfs_engine::{tree, AlwaysTopDown, FixedMN, TraversalState, XbfsError};
use xbfs_graph::{Bitmap, Csr, VertexId};

/// On-disk format version; bumped on any incompatible layout change.
pub const CHECKPOINT_FORMAT_VERSION: u32 = 1;

/// Where the traversal's live state resided when the checkpoint was cut.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Residency {
    /// State lives in host memory (CPU phase, CPU-only and reference
    /// rungs): capture is free.
    Host,
    /// State lives on the accelerator (post-handoff cross rung): capture
    /// drains the device's delta over the link first, and resuming on a
    /// host rung translates the frontier to queue form.
    Device,
}

/// How often checkpoints are cut, and where they spill.
#[derive(Clone, Debug, PartialEq, Default, Serialize, Deserialize)]
pub struct CheckpointPolicy {
    /// Cut a checkpoint before every level whose index is a positive
    /// multiple of this; `0` disables checkpointing entirely.
    pub interval_levels: u32,
    /// Spill every captured checkpoint to this path as JSON (last write
    /// wins), so an external process can resume after a crash. Requires
    /// `interval_levels > 0`.
    pub spill: Option<String>,
}

impl CheckpointPolicy {
    /// Checkpointing off (PR 1 behaviour: any failure restarts the rung
    /// from level 0).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Checkpoint every `interval` levels, in-memory only.
    pub fn every(interval: u32) -> Self {
        Self {
            interval_levels: interval,
            spill: None,
        }
    }

    /// `true` if any checkpoints will be cut.
    pub fn enabled(&self) -> bool {
        self.interval_levels > 0
    }

    /// Is a checkpoint due at the boundary *before* `level` runs?
    pub fn due(&self, level: u32) -> bool {
        self.interval_levels > 0 && level > 0 && level.is_multiple_of(self.interval_levels)
    }

    /// Validate the combination of fields.
    pub fn validate(&self) -> Result<(), XbfsError> {
        if self.spill.is_some() && self.interval_levels == 0 {
            return Err(XbfsError::InvalidArgument {
                what: "checkpoint spill path set but interval is 0 (disabled)".into(),
            });
        }
        Ok(())
    }
}

/// Everything needed to restart a traversal at a level boundary: the
/// engine state, the rung's execution context, the runtime's clock and
/// audit counters, the fault-stream cursor, and the breaker states.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LevelCheckpoint {
    /// [`CHECKPOINT_FORMAT_VERSION`] at capture time.
    pub format_version: u32,
    /// Vertex count of the graph this checkpoint belongs to.
    pub num_vertices: u32,
    /// Directed edge count of that graph.
    pub num_directed_edges: u64,
    /// The rung that was executing when the checkpoint was cut.
    pub rung: Rung,
    /// Where the live state resided.
    pub residency: Residency,
    /// The engine's mid-traversal state (parent tree, frontier, per-level
    /// counters, next level index).
    pub state: TraversalState,
    /// Cross rung only: placement per executed level.
    pub placements: Vec<Placement>,
    /// Cross rung only: `true` once the CPU→GPU handoff has fired.
    pub handed_off: bool,
    /// Cross rung only: vertices discovered while on the device (sizes
    /// the pullback).
    pub device_discovered: u64,
    /// Simulated clock at the boundary, pullback included.
    pub clock_s: f64,
    /// Simulated seconds lost to faults so far.
    pub lost_s: f64,
    /// Retries spent so far.
    pub retries: u32,
    /// Faults observed so far.
    pub events: Vec<FaultEvent>,
    /// The fault session's resumable position.
    pub fault_cursor: FaultCursor,
    /// The retry-backoff jitter RNG state.
    pub jitter_rng: u64,
    /// Circuit-breaker states at the boundary.
    pub breakers: HealthSnapshot,
}

impl LevelCheckpoint {
    /// The level this checkpoint resumes at (all levels below it are
    /// already in `state`).
    pub fn level(&self) -> u32 {
        self.state.next_level
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("LevelCheckpoint serializes")
    }

    /// Parse from JSON (structure only — run [`validate_for`]
    /// against the graph before resuming).
    ///
    /// [`validate_for`]: LevelCheckpoint::validate_for
    pub fn from_json(s: &str) -> Result<Self, XbfsError> {
        serde_json::from_str(s).map_err(|e| XbfsError::Checkpoint {
            what: format!("parse error: {e:?}"),
        })
    }

    /// Serialized size in bytes — the number a `RunReport` exposes as
    /// `checkpoint_bytes`.
    pub fn byte_size(&self) -> u64 {
        self.to_json().len() as u64
    }

    /// Write to `path` as JSON.
    pub fn spill(&self, path: &str) -> Result<(), XbfsError> {
        std::fs::write(path, self.to_json()).map_err(|e| XbfsError::Checkpoint {
            what: format!("spill to {path}: {e}"),
        })
    }

    /// Read a spilled checkpoint back from `path`.
    pub fn load(path: &str) -> Result<Self, XbfsError> {
        let text = std::fs::read_to_string(path).map_err(|e| XbfsError::Checkpoint {
            what: format!("load from {path}: {e}"),
        })?;
        Self::from_json(&text)
    }

    /// Full trust gate before resuming from this checkpoint on `csr`:
    /// format version, graph identity, engine-state bookkeeping, partial
    /// BFS-tree consistency, and cross-rung placement coherence.
    pub fn validate_for(&self, csr: &Csr) -> Result<(), XbfsError> {
        let fail = |what: String| Err(XbfsError::Checkpoint { what });
        if self.format_version != CHECKPOINT_FORMAT_VERSION {
            return fail(format!(
                "format version {} (this build reads {CHECKPOINT_FORMAT_VERSION})",
                self.format_version
            ));
        }
        if self.num_vertices != csr.num_vertices()
            || self.num_directed_edges != csr.num_directed_edges()
        {
            return fail(format!(
                "checkpoint is for a {}-vertex/{}-edge graph, got {}/{}",
                self.num_vertices,
                self.num_directed_edges,
                csr.num_vertices(),
                csr.num_directed_edges()
            ));
        }
        if !self.clock_s.is_finite()
            || self.clock_s < 0.0
            || !self.lost_s.is_finite()
            || self.lost_s < 0.0
        {
            return fail(format!(
                "non-finite or negative clock state ({} s, {} s lost)",
                self.clock_s, self.lost_s
            ));
        }
        self.state.check_against(csr)?;
        if let Some(v) = tree::partial_tree_violation(csr, &self.state.output) {
            return fail(format!("partial tree: {v}"));
        }
        match self.rung {
            Rung::CrossCpuGpu => {
                if self.placements.len() != self.state.next_level as usize {
                    return fail(format!(
                        "{} placements for {} executed levels",
                        self.placements.len(),
                        self.state.next_level
                    ));
                }
                let handed = self.placements.iter().any(|p| p.on_gpu());
                if handed != self.handed_off {
                    return fail("handoff latch disagrees with placement log".into());
                }
                if (self.residency == Residency::Device) != self.handed_off {
                    return fail("residency disagrees with handoff latch".into());
                }
            }
            Rung::CpuOnly | Rung::Reference => {
                if self.residency != Residency::Host {
                    return fail(format!("{} checkpoints are host-resident", self.rung));
                }
            }
        }
        Ok(())
    }

    /// The frontier translated for a host rung: ascending vertex order via
    /// a dense bitmap — the representation a GPU-resident frontier drains
    /// into (and exactly the order a bottom-up level produces natively).
    pub fn host_order_frontier(&self) -> Vec<VertexId> {
        let mut bits = Bitmap::new(self.num_vertices as usize);
        for &v in &self.state.frontier {
            bits.set(v);
        }
        bits.iter().collect()
    }
}

fn fault_free(session: &mut FaultSession<'_>, op: FaultOp, level: u32) -> Result<(), XbfsError> {
    match session.check(op, level as usize) {
        None => Ok(()),
        Some(kind) => Err(XbfsError::Checkpoint {
            what: format!("capture_at requires a fault-free prefix, but {op:?} at level {level} drew {kind:?}"),
        }),
    }
}

/// Run `rung` under `plan` up to (but not including) `level` and cut the
/// boundary checkpoint there — erroring if any fault fires inside the
/// prefix. This is the tooling/test primitive behind the "checkpoint at
/// level ℓ then resume equals an uninterrupted run" property; the
/// recovery ladder itself captures inline while it executes.
#[allow(clippy::too_many_arguments)] // mirrors run_cross_resilient's surface
pub fn capture_at(
    csr: &Csr,
    source: VertexId,
    cpu: &ArchSpec,
    gpu: &ArchSpec,
    link: &Link,
    params: &CrossParams,
    plan: &FaultPlan,
    rung: Rung,
    level: u32,
) -> Result<LevelCheckpoint, XbfsError> {
    params.validate()?;
    plan.validate()?;
    if source >= csr.num_vertices() {
        return Err(XbfsError::BadSource {
            source,
            num_vertices: csr.num_vertices(),
        });
    }
    if level == 0 {
        return Err(XbfsError::InvalidArgument {
            what: "capture level must be >= 1 (level 0 is a fresh start)".into(),
        });
    }

    let n = csr.num_vertices() as u64;
    let mut session = plan.session();
    let mut clock_s = 0.0;
    let mut state = TraversalState::start(csr, source);
    let mut driver = CrossDriver::new(*params);
    let mut cpu_policy = FixedMN::new(14.0, 24.0);
    let mut reference_policy = AlwaysTopDown;
    let mut device_discovered = 0u64;

    while state.next_level < level {
        if state.is_complete() {
            return Err(XbfsError::InvalidArgument {
                what: format!(
                    "traversal completes after {} level(s); cannot checkpoint at level {level}",
                    state.next_level
                ),
            });
        }
        match rung {
            Rung::CrossCpuGpu => {
                let was_handed = driver.handed_off();
                let pl = driver.step(csr, &mut state).expect("not complete");
                let rec = *state.levels.last().expect("step pushed a record");
                if pl.on_gpu() && !was_handed {
                    fault_free(&mut session, FaultOp::Transfer, rec.level)?;
                    clock_s += link.transfer_time(Link::handoff_bytes(n, rec.frontier_vertices));
                }
                let (op, arch) = if pl.on_gpu() {
                    (FaultOp::GpuKernel, gpu)
                } else {
                    (FaultOp::CpuKernel, cpu)
                };
                fault_free(&mut session, op, rec.level)?;
                clock_s += cost::level_time_for_record(arch, &rec);
                if pl.on_gpu() {
                    device_discovered += rec.discovered;
                }
            }
            Rung::CpuOnly => {
                state.step(csr, &mut cpu_policy).expect("not complete");
                let rec = *state.levels.last().expect("step pushed a record");
                fault_free(&mut session, FaultOp::CpuKernel, rec.level)?;
                clock_s += cost::level_time_for_record(cpu, &rec);
            }
            Rung::Reference => {
                // The reference rung is fault-free by construction; only
                // the clock advances.
                state
                    .step(csr, &mut reference_policy)
                    .expect("not complete");
                let rec = *state.levels.last().expect("step pushed a record");
                clock_s +=
                    cost::level_time_for_record(cpu, &rec) * reference_sequential_penalty(cpu);
            }
        }
    }

    let residency = if rung == Rung::CrossCpuGpu && driver.handed_off() {
        Residency::Device
    } else {
        Residency::Host
    };
    if residency == Residency::Device {
        // Draining the device's delta is what makes the checkpoint durable.
        clock_s += link.transfer_time(Link::pullback_bytes(
            n,
            device_discovered,
            state.frontier.len() as u64,
        ));
    }
    Ok(LevelCheckpoint {
        format_version: CHECKPOINT_FORMAT_VERSION,
        num_vertices: csr.num_vertices(),
        num_directed_edges: csr.num_directed_edges(),
        rung,
        residency,
        state,
        placements: if rung == Rung::CrossCpuGpu {
            driver.placements().to_vec()
        } else {
            Vec::new()
        },
        handed_off: rung == Rung::CrossCpuGpu && driver.handed_off(),
        device_discovered,
        clock_s,
        lost_s: 0.0,
        retries: 0,
        events: Vec::new(),
        fault_cursor: session.cursor(),
        jitter_rng: plan.seed ^ JITTER_SALT,
        breakers: crate::health::DeviceHealth::new(BreakerPolicy::default_runtime(), plan.seed)
            .snapshot(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> (Csr, u32, ArchSpec, ArchSpec, Link, CrossParams) {
        let g = xbfs_graph::rmat::rmat_csr(9, 16);
        let src = crate::training::pick_source(&g, 3).unwrap();
        (
            g,
            src,
            ArchSpec::cpu_sandy_bridge(),
            ArchSpec::gpu_k20x(),
            Link::pcie3(),
            CrossParams {
                handoff: FixedMN::new(64.0, 64.0),
                gpu: FixedMN::new(14.0, 24.0),
            },
        )
    }

    #[test]
    fn policy_cadence_and_validation() {
        let p = CheckpointPolicy::every(3);
        assert!(p.enabled());
        assert!(!p.due(0));
        assert!(!p.due(2));
        assert!(p.due(3));
        assert!(p.due(6));
        assert!(!CheckpointPolicy::disabled().enabled());
        assert!(!CheckpointPolicy::disabled().due(4));
        assert!(CheckpointPolicy::every(1).validate().is_ok());
        let bad = CheckpointPolicy {
            interval_levels: 0,
            spill: Some("/tmp/x.json".into()),
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn capture_serde_round_trip_is_lossless() {
        let (g, src, cpu, gpu, link, params) = fixture();
        for rung in [Rung::CrossCpuGpu, Rung::CpuOnly, Rung::Reference] {
            let ck = capture_at(
                &g,
                src,
                &cpu,
                &gpu,
                &link,
                &params,
                &FaultPlan::none(),
                rung,
                2,
            )
            .expect("capture");
            assert_eq!(ck.level(), 2);
            assert!(ck.validate_for(&g).is_ok());
            let back = LevelCheckpoint::from_json(&ck.to_json()).expect("parses");
            assert_eq!(back, ck);
            assert!(ck.byte_size() > 0);
        }
    }

    #[test]
    fn device_resident_capture_charges_the_pullback() {
        let (g, src, cpu, gpu, link, params) = fixture();
        // Force an immediate handoff so level 1 is already GPU-resident.
        let eager = CrossParams {
            handoff: FixedMN::new(1e9, 1e9),
            gpu: params.gpu,
        };
        let on_gpu = capture_at(
            &g,
            src,
            &cpu,
            &gpu,
            &link,
            &eager,
            &FaultPlan::none(),
            Rung::CrossCpuGpu,
            2,
        )
        .expect("capture");
        assert_eq!(on_gpu.residency, Residency::Device);
        assert!(on_gpu.handed_off);
        assert!(on_gpu.device_discovered > 0);
        // The host-resident CPU-only capture at the same level pays no
        // pullback; the cross capture's clock must include one.
        let pullback = link.transfer_time(Link::pullback_bytes(
            g.num_vertices() as u64,
            on_gpu.device_discovered,
            on_gpu.state.frontier.len() as u64,
        ));
        assert!(pullback > 0.0);
        assert!(on_gpu.clock_s > pullback);
    }

    #[test]
    fn capture_rejects_bad_levels_and_fault_prefixes() {
        let (g, src, cpu, gpu, link, params) = fixture();
        let err = capture_at(
            &g,
            src,
            &cpu,
            &gpu,
            &link,
            &params,
            &FaultPlan::none(),
            Rung::CpuOnly,
            0,
        )
        .unwrap_err();
        assert!(matches!(err, XbfsError::InvalidArgument { .. }));

        let err = capture_at(
            &g,
            src,
            &cpu,
            &gpu,
            &link,
            &params,
            &FaultPlan::none(),
            Rung::CpuOnly,
            10_000,
        )
        .unwrap_err();
        assert!(matches!(err, XbfsError::InvalidArgument { .. }));

        // A fault inside the prefix poisons the capture.
        let plan = FaultPlan::lost_at(FaultOp::CpuKernel, 0);
        let err =
            capture_at(&g, src, &cpu, &gpu, &link, &params, &plan, Rung::CpuOnly, 2).unwrap_err();
        assert!(matches!(err, XbfsError::Checkpoint { .. }));
    }

    #[test]
    fn validate_for_rejects_mismatched_graphs_and_tampering() {
        let (g, src, cpu, gpu, link, params) = fixture();
        let ck = capture_at(
            &g,
            src,
            &cpu,
            &gpu,
            &link,
            &params,
            &FaultPlan::none(),
            Rung::CpuOnly,
            2,
        )
        .unwrap();

        let other = xbfs_graph::rmat::rmat_csr(8, 8);
        assert!(ck.validate_for(&other).is_err());

        let mut bad = ck.clone();
        bad.format_version += 1;
        assert!(bad.validate_for(&g).is_err());

        let mut bad = ck.clone();
        bad.clock_s = f64::NAN;
        assert!(bad.validate_for(&g).is_err());

        let mut bad = ck.clone();
        bad.residency = Residency::Device; // CPU-only state is host-resident
        assert!(bad.validate_for(&g).is_err());

        let mut bad = ck;
        if let Some(v) = bad.state.frontier.first().copied() {
            bad.state.output.parents[v as usize] = v; // corrupt the tree
            assert!(bad.validate_for(&g).is_err());
        }
    }

    #[test]
    fn spill_and_load_round_trip() {
        let (g, src, cpu, gpu, link, params) = fixture();
        let ck = capture_at(
            &g,
            src,
            &cpu,
            &gpu,
            &link,
            &params,
            &FaultPlan::none(),
            Rung::CrossCpuGpu,
            3,
        )
        .unwrap();
        let dir = std::env::temp_dir().join("xbfs-checkpoint-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ck.json");
        let path = path.to_str().unwrap();
        ck.spill(path).expect("spill");
        let back = LevelCheckpoint::load(path).expect("load");
        assert_eq!(back, ck);
        assert!(LevelCheckpoint::load("/nonexistent/ck.json").is_err());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn host_order_frontier_is_sorted_and_deduped() {
        let ck = {
            let (g, src, cpu, gpu, link, params) = fixture();
            capture_at(
                &g,
                src,
                &cpu,
                &gpu,
                &link,
                &params,
                &FaultPlan::none(),
                Rung::CrossCpuGpu,
                2,
            )
            .unwrap()
        };
        let host = ck.host_order_frontier();
        let mut expect = ck.state.frontier.clone();
        expect.sort_unstable();
        expect.dedup();
        assert_eq!(host, expect);
    }
}
