//! Single-architecture combination execution with a simulated clock.
//!
//! The paper's `CPUCB`, `GPUCB` and `MICCB` columns: run the
//! direction-optimizing engine with a policy, then charge each executed
//! level on the device's cost model. Pure `*TD` / `*BU` variants fall out
//! by passing the corresponding always-policies.

use serde::{Deserialize, Serialize};
use xbfs_archsim::ArchSpec;
use xbfs_engine::{hybrid, Direction, SwitchPolicy, Traversal};
use xbfs_graph::{Csr, VertexId};

/// A fully executed single-device traversal with simulated timing.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SingleRun {
    /// The real traversal.
    pub traversal: Traversal,
    /// Simulated seconds per level.
    pub level_seconds: Vec<f64>,
    /// Total simulated seconds.
    pub total_seconds: f64,
}

impl SingleRun {
    /// Simulated TEPS for this run given the component's edge count.
    pub fn teps(&self, component_edges: u64) -> f64 {
        component_edges as f64 / self.total_seconds
    }
}

/// Execute a traversal on `arch` with `policy` and charge simulated time.
pub fn run_single(
    csr: &Csr,
    source: VertexId,
    arch: &ArchSpec,
    policy: &mut dyn SwitchPolicy,
) -> SingleRun {
    let traversal = hybrid::run(csr, source, policy);
    let level_seconds: Vec<f64> = traversal
        .levels
        .iter()
        .map(|rec| match rec.direction {
            Direction::TopDown => arch.td_level_time(
                rec.frontier_vertices,
                rec.edges_examined,
                rec.max_frontier_degree,
            ),
            Direction::BottomUp => arch.bu_level_time(
                rec.vertices_scanned,
                rec.edges_examined,
                rec.frontier_vertices,
            ),
        })
        .collect();
    let total_seconds = level_seconds.iter().sum();
    SingleRun {
        traversal,
        level_seconds,
        total_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbfs_engine::{AlwaysBottomUp, AlwaysTopDown, FixedMN};

    fn graph() -> Csr {
        xbfs_graph::rmat::rmat_csr(12, 16)
    }

    #[test]
    fn per_level_times_match_arch_model() {
        let g = graph();
        let cpu = ArchSpec::cpu_sandy_bridge();
        let run = run_single(&g, 0, &cpu, &mut AlwaysTopDown);
        for (secs, rec) in run.level_seconds.iter().zip(&run.traversal.levels) {
            let expect = cpu.td_level_time(
                rec.frontier_vertices,
                rec.edges_examined,
                rec.max_frontier_degree,
            );
            assert_eq!(*secs, expect);
        }
        assert_eq!(run.total_seconds, run.level_seconds.iter().sum::<f64>());
    }

    #[test]
    fn combination_beats_pure_on_gpu() {
        // Table IV's single-device story: GPUCB ≫ GPUTD and GPUBU. Uses a
        // random non-isolated source (a hub source would make pure
        // bottom-up optimal from level 0 and void the comparison).
        let g = xbfs_graph::rmat::rmat_csr(14, 16);
        let src = crate::training::pick_source(&g, 9).unwrap();
        let gpu = ArchSpec::gpu_k20x();
        let td = run_single(&g, src, &gpu, &mut AlwaysTopDown).total_seconds;
        let bu = run_single(&g, src, &gpu, &mut AlwaysBottomUp).total_seconds;
        let cb = run_single(&g, src, &gpu, &mut FixedMN::new(14.0, 24.0)).total_seconds;
        assert!(cb <= td && cb <= bu, "cb {cb} td {td} bu {bu}");
    }

    #[test]
    fn teps_scales_inversely_with_time() {
        let g = graph();
        let cpu = ArchSpec::cpu_sandy_bridge();
        let mic = ArchSpec::mic_knights_corner();
        let rc = run_single(&g, 0, &cpu, &mut FixedMN::new(14.0, 24.0));
        let rm = run_single(&g, 0, &mic, &mut FixedMN::new(14.0, 24.0));
        let edges = 1_000_000u64;
        assert!(rc.teps(edges) > rm.teps(edges));
    }

    #[test]
    fn traversal_is_identical_across_archs() {
        // The device only affects time, never the BFS result.
        let g = graph();
        let cpu = run_single(&g, 3, &ArchSpec::cpu_sandy_bridge(), &mut AlwaysTopDown);
        let gpu = run_single(&g, 3, &ArchSpec::gpu_k20x(), &mut AlwaysTopDown);
        assert_eq!(cpu.traversal.output, gpu.traversal.output);
        assert_ne!(cpu.total_seconds, gpu.total_seconds);
    }
}
