//! [`RunSession`] — the one composable entry point to resilient
//! cross-architecture execution.
//!
//! PR 2 left the crate with six overlapping ways to start a traversal
//! (three free functions in [`crate::recovery`], three methods on
//! [`AdaptiveRuntime`]), all of them positional-argument walls. This
//! builder replaces the lot:
//!
//! ```no_run
//! use xbfs_core::prelude::*;
//! # let runtime = AdaptiveRuntime::quick_trained();
//! # let csr = xbfs_graph::rmat::rmat_csr(8, 8);
//! # let stats = xbfs_graph::GraphStats::rmat(&csr, 0.57, 0.19, 0.19, 0.05);
//! # let plan = xbfs_archsim::FaultPlan::none();
//! let sink = MemorySink::new();
//! let run = RunSession::new(&runtime, &csr, &stats)
//!     .source(0)
//!     .fault_plan(&plan)
//!     .checkpoints(CheckpointPolicy::every(2))
//!     .sink(&sink)
//!     .run()?;
//! # Ok::<(), XbfsError>(())
//! ```
//!
//! Every knob has a production-sane default: no faults, the runtime
//! resilience defaults, a disabled ([`NullSink`]) trace sink, and — on the
//! [`RunSession::new`] path — switch parameters predicted from the graph's
//! statistics. The deprecated free functions and runtime methods are thin
//! shims over this type.
//!
//! [`NullSink`]: xbfs_engine::trace::NullSink

use crate::checkpoint::{CheckpointPolicy, LevelCheckpoint};
use crate::cross::CrossParams;
use crate::health::Device;
use crate::recovery::{execute_fresh, execute_resume, ExecArgs, RecoveredRun, ResilienceConfig};
use crate::runtime::AdaptiveRuntime;
use xbfs_archsim::{ArchSpec, FaultPlan, Link};
use xbfs_engine::trace::{TraceSink, NULL_SINK};
use xbfs_engine::XbfsError;
use xbfs_graph::{Csr, GraphStats, VertexId};

/// Where the devices and switch parameters come from.
enum Platform<'a> {
    /// A trained [`AdaptiveRuntime`]: devices from the runtime, parameters
    /// predicted from graph statistics unless overridden.
    Runtime {
        rt: &'a AdaptiveRuntime,
        stats: &'a GraphStats,
    },
    /// Explicit device specs and parameters (tests, experiments, shims).
    Explicit {
        cpu: &'a ArchSpec,
        gpu: &'a ArchSpec,
        link: &'a Link,
    },
}

/// A configured-but-not-yet-started resilient traversal.
///
/// Construct with [`RunSession::new`] (trained runtime, predicted
/// parameters) or [`RunSession::on_platform`] (explicit devices and
/// parameters), chain the builders, finish with [`RunSession::run`] or
/// [`RunSession::resume`].
pub struct RunSession<'a> {
    csr: &'a Csr,
    platform: Platform<'a>,
    params: Option<CrossParams>,
    source: Option<VertexId>,
    plan: FaultPlan,
    config: ResilienceConfig,
    lost: Vec<Device>,
    sink: &'a dyn TraceSink,
}

impl<'a> RunSession<'a> {
    /// A session on a trained runtime: devices come from `runtime`, and
    /// unless [`params`](Self::params) overrides them, Algorithm 3's switch
    /// parameters are predicted from `stats` when the session starts.
    pub fn new(runtime: &'a AdaptiveRuntime, csr: &'a Csr, stats: &'a GraphStats) -> Self {
        Self {
            csr,
            platform: Platform::Runtime { rt: runtime, stats },
            params: None,
            source: None,
            plan: FaultPlan::none(),
            config: ResilienceConfig::default_runtime(),
            lost: Vec::new(),
            sink: &NULL_SINK,
        }
    }

    /// A session on explicit device specs with explicit parameters — no
    /// trained predictor involved.
    pub fn on_platform(
        csr: &'a Csr,
        cpu: &'a ArchSpec,
        gpu: &'a ArchSpec,
        link: &'a Link,
        params: &CrossParams,
    ) -> Self {
        Self {
            csr,
            platform: Platform::Explicit { cpu, gpu, link },
            params: Some(*params),
            source: None,
            plan: FaultPlan::none(),
            config: ResilienceConfig::default_runtime(),
            lost: Vec::new(),
            sink: &NULL_SINK,
        }
    }

    /// Set the BFS source vertex (required for [`run`](Self::run)).
    pub fn source(mut self, v: VertexId) -> Self {
        self.source = Some(v);
        self
    }

    /// Override the cross-combination switch parameters.
    pub fn params(mut self, params: CrossParams) -> Self {
        self.params = Some(params);
        self
    }

    /// Inject `plan`'s faults (default: no faults).
    pub fn fault_plan(mut self, plan: &FaultPlan) -> Self {
        self.plan = plan.clone();
        self
    }

    /// Replace the whole failure-handling configuration (default:
    /// [`ResilienceConfig::default_runtime`]).
    pub fn resilience(mut self, config: ResilienceConfig) -> Self {
        self.config = config;
        self
    }

    /// Set just the checkpoint cadence/spill, keeping the rest of the
    /// resilience configuration.
    pub fn checkpoints(mut self, policy: CheckpointPolicy) -> Self {
        self.config.checkpoint = policy;
        self
    }

    /// Declare devices known to be permanently lost before the run starts
    /// (default: none). Their circuit breakers open for good at t=0, so
    /// rungs needing them are skipped instead of re-discovering the loss.
    /// The query service uses this to share one loss ledger across
    /// queries; [`resume`](Self::resume) ignores it in favor of the
    /// checkpoint's own breaker bank.
    pub fn presume_lost(mut self, devices: &[Device]) -> Self {
        self.lost = devices.to_vec();
        self
    }

    /// Send trace events to `sink` (default: the disabled
    /// [`NULL_SINK`], which makes instrumentation zero-cost).
    pub fn sink(mut self, sink: &'a dyn TraceSink) -> Self {
        self.sink = sink;
        self
    }

    /// Resolve the platform into concrete devices and parameters.
    fn resolve(&self) -> (&'a ArchSpec, &'a ArchSpec, &'a Link, CrossParams) {
        match self.platform {
            Platform::Runtime { rt, stats } => {
                let params = self.params.unwrap_or_else(|| rt.predict_params(stats));
                (&rt.cpu, &rt.gpu, &rt.link, params)
            }
            Platform::Explicit { cpu, gpu, link } => {
                let params = self.params.expect("on_platform always sets params");
                (cpu, gpu, link, params)
            }
        }
    }

    /// Start the full degradation ladder from the configured source.
    pub fn run(self) -> Result<RecoveredRun, XbfsError> {
        let Some(source) = self.source else {
            return Err(XbfsError::InvalidArgument {
                what: "RunSession::run needs a source vertex (call .source(v))".into(),
            });
        };
        let (cpu, gpu, link, params) = self.resolve();
        execute_fresh(
            &ExecArgs {
                csr: self.csr,
                cpu,
                gpu,
                link,
                params: &params,
                plan: &self.plan,
                config: &self.config,
                lost: &self.lost,
                sink: self.sink,
            },
            source,
        )
    }

    /// Resume the ladder from `checkpoint` (typically loaded from a spill
    /// file after a crash). The source comes from the checkpoint; a
    /// configured [`source`](Self::source) is ignored.
    pub fn resume(self, checkpoint: &LevelCheckpoint) -> Result<RecoveredRun, XbfsError> {
        let (cpu, gpu, link, params) = self.resolve();
        execute_resume(
            &ExecArgs {
                csr: self.csr,
                cpu,
                gpu,
                link,
                params: &params,
                plan: &self.plan,
                config: &self.config,
                lost: &self.lost,
                sink: self.sink,
            },
            checkpoint,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recovery::Rung;
    use xbfs_engine::trace::MemorySink;
    use xbfs_engine::{validate, FixedMN};

    fn setup() -> (Csr, u32, ArchSpec, ArchSpec, Link, CrossParams) {
        let g = xbfs_graph::rmat::rmat_csr(10, 16);
        let src = crate::training::pick_source(&g, 3).unwrap();
        (
            g,
            src,
            ArchSpec::cpu_sandy_bridge(),
            ArchSpec::gpu_k20x(),
            Link::pcie3(),
            CrossParams {
                handoff: FixedMN::new(64.0, 64.0),
                gpu: FixedMN::new(14.0, 24.0),
            },
        )
    }

    #[test]
    fn missing_source_is_a_typed_error() {
        let (g, _, cpu, gpu, link, params) = setup();
        let err = RunSession::on_platform(&g, &cpu, &gpu, &link, &params)
            .run()
            .unwrap_err();
        assert!(matches!(err, XbfsError::InvalidArgument { .. }));
    }

    #[test]
    fn healthy_session_serves_on_the_top_rung() {
        let (g, src, cpu, gpu, link, params) = setup();
        let run = RunSession::on_platform(&g, &cpu, &gpu, &link, &params)
            .source(src)
            .run()
            .expect("healthy run");
        assert_eq!(run.report.rung, Rung::CrossCpuGpu);
        assert_eq!(validate(&g, &run.output), Ok(()));
    }

    #[test]
    fn sink_receives_a_trace_without_changing_the_run() {
        let (g, src, cpu, gpu, link, params) = setup();
        let silent = RunSession::on_platform(&g, &cpu, &gpu, &link, &params)
            .source(src)
            .run()
            .expect("silent run");
        let sink = MemorySink::new();
        let traced = RunSession::on_platform(&g, &cpu, &gpu, &link, &params)
            .source(src)
            .sink(&sink)
            .run()
            .expect("traced run");
        assert_eq!(traced.output, silent.output);
        assert_eq!(traced.report, silent.report);
        assert!(!sink.is_empty(), "trace must not be empty");
    }

    #[test]
    fn presumed_lost_gpu_skips_the_cross_rung() {
        let (g, src, cpu, gpu, link, params) = setup();
        let run = RunSession::on_platform(&g, &cpu, &gpu, &link, &params)
            .source(src)
            .presume_lost(&[Device::Gpu])
            .run()
            .expect("degraded run");
        assert_eq!(run.report.rung, Rung::CpuOnly);
        assert!(run.report.skipped_rungs.contains(&Rung::CrossCpuGpu));
        assert_eq!(validate(&g, &run.output), Ok(()));
        // The pre-seeded loss appears as a t=0 breaker transition, so the
        // per-query trace explains *why* the cross rung was skipped.
        assert!(run
            .report
            .breaker_transitions
            .iter()
            .any(|t| t.device == Device::Gpu && t.at_s == 0.0));
    }

    #[test]
    fn checkpoints_builder_only_touches_the_checkpoint_policy() {
        let (g, src, cpu, gpu, link, params) = setup();
        let run = RunSession::on_platform(&g, &cpu, &gpu, &link, &params)
            .source(src)
            .checkpoints(CheckpointPolicy::every(1))
            .run()
            .expect("checkpointing run");
        assert!(run.report.checkpoints_taken > 0);
        let off = RunSession::on_platform(&g, &cpu, &gpu, &link, &params)
            .source(src)
            .checkpoints(CheckpointPolicy::disabled())
            .run()
            .expect("non-checkpointing run");
        assert_eq!(off.report.checkpoints_taken, 0);
        assert_eq!(run.output, off.output);
    }
}
