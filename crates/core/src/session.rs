//! [`RunSession`] — the one composable entry point to resilient
//! cross-architecture execution — and [`BatchSession`], its multi-source
//! sibling that serves up to 64 lane-packed traversals per batch.
//!
//! PR 2 left the crate with six overlapping ways to start a traversal
//! (three free functions in [`crate::recovery`], three methods on
//! [`AdaptiveRuntime`]), all of them positional-argument walls. This
//! builder replaces the lot:
//!
//! ```no_run
//! use xbfs_core::prelude::*;
//! # let runtime = AdaptiveRuntime::quick_trained();
//! # let csr = xbfs_graph::rmat::rmat_csr(8, 8);
//! # let stats = xbfs_graph::GraphStats::rmat(&csr, 0.57, 0.19, 0.19, 0.05);
//! # let plan = xbfs_archsim::FaultPlan::none();
//! let sink = MemorySink::new();
//! let run = RunSession::new(&runtime, &csr, &stats)
//!     .source(0)
//!     .fault_plan(&plan)
//!     .checkpoints(CheckpointPolicy::every(2))
//!     .sink(&sink)
//!     .run()?;
//! # Ok::<(), XbfsError>(())
//! ```
//!
//! Every knob has a production-sane default: no faults, the runtime
//! resilience defaults, a disabled ([`NullSink`]) trace sink, and — on the
//! [`RunSession::new`] path — switch parameters predicted from the graph's
//! statistics. The deprecated free functions and runtime methods are thin
//! shims over this type.
//!
//! [`NullSink`]: xbfs_engine::trace::NullSink

use crate::checkpoint::{CheckpointPolicy, LevelCheckpoint};
use crate::cross::{CrossDriver, CrossParams, Placement};
use crate::health::Device;
use crate::policy_online::{self, Decision, PolicyCell};
use crate::recovery::{
    execute_fresh, execute_resume, ExecArgs, RecoveredRun, ResilienceConfig, RunReport, Rung,
};
use crate::runtime::AdaptiveRuntime;
use xbfs_archsim::{cost, ArchSpec, FaultPlan, Link};
use xbfs_engine::trace::{TraceEvent, TraceSink, NULL_SINK};
use xbfs_engine::{validate, TraversalState, XbfsError, MAX_LANES};
use xbfs_graph::{Csr, GraphStats, VertexId};

/// Where the devices and switch parameters come from.
enum Platform<'a> {
    /// A trained [`AdaptiveRuntime`]: devices from the runtime, parameters
    /// predicted from graph statistics unless overridden.
    Runtime {
        rt: &'a AdaptiveRuntime,
        stats: &'a GraphStats,
    },
    /// Explicit device specs and parameters (tests, experiments, shims).
    Explicit {
        cpu: &'a ArchSpec,
        gpu: &'a ArchSpec,
        link: &'a Link,
    },
}

/// A configured-but-not-yet-started resilient traversal.
///
/// Construct with [`RunSession::new`] (trained runtime, predicted
/// parameters) or [`RunSession::on_platform`] (explicit devices and
/// parameters), chain the builders, finish with [`RunSession::run`] or
/// [`RunSession::resume`].
pub struct RunSession<'a> {
    csr: &'a Csr,
    platform: Platform<'a>,
    params: Option<CrossParams>,
    source: Option<VertexId>,
    plan: FaultPlan,
    config: ResilienceConfig,
    lost: Vec<Device>,
    sink: &'a dyn TraceSink,
    policy: Option<&'a PolicyCell>,
}

impl<'a> RunSession<'a> {
    /// A session on a trained runtime: devices come from `runtime`, and
    /// unless [`params`](Self::params) overrides them, Algorithm 3's switch
    /// parameters are predicted from `stats` when the session starts.
    pub fn new(runtime: &'a AdaptiveRuntime, csr: &'a Csr, stats: &'a GraphStats) -> Self {
        Self {
            csr,
            platform: Platform::Runtime { rt: runtime, stats },
            params: None,
            source: None,
            plan: FaultPlan::none(),
            config: ResilienceConfig::default_runtime(),
            lost: Vec::new(),
            sink: &NULL_SINK,
            policy: None,
        }
    }

    /// A session on explicit device specs with explicit parameters — no
    /// trained predictor involved.
    pub fn on_platform(
        csr: &'a Csr,
        cpu: &'a ArchSpec,
        gpu: &'a ArchSpec,
        link: &'a Link,
        params: &CrossParams,
    ) -> Self {
        Self {
            csr,
            platform: Platform::Explicit { cpu, gpu, link },
            params: Some(*params),
            source: None,
            plan: FaultPlan::none(),
            config: ResilienceConfig::default_runtime(),
            lost: Vec::new(),
            sink: &NULL_SINK,
            policy: None,
        }
    }

    /// Set the BFS source vertex (required for [`run`](Self::run)).
    pub fn source(mut self, v: VertexId) -> Self {
        self.source = Some(v);
        self
    }

    /// Override the cross-combination switch parameters.
    pub fn params(mut self, params: CrossParams) -> Self {
        self.params = Some(params);
        self
    }

    /// Inject `plan`'s faults (default: no faults).
    pub fn fault_plan(mut self, plan: &FaultPlan) -> Self {
        self.plan = plan.clone();
        self
    }

    /// Replace the whole failure-handling configuration (default:
    /// [`ResilienceConfig::default_runtime`]).
    pub fn resilience(mut self, config: ResilienceConfig) -> Self {
        self.config = config;
        self
    }

    /// Set just the checkpoint cadence/spill, keeping the rest of the
    /// resilience configuration.
    pub fn checkpoints(mut self, policy: CheckpointPolicy) -> Self {
        self.config.checkpoint = policy;
        self
    }

    /// Declare devices known to be permanently lost before the run starts
    /// (default: none). Their circuit breakers open for good at t=0, so
    /// rungs needing them are skipped instead of re-discovering the loss.
    /// The query service uses this to share one loss ledger across
    /// queries; [`resume`](Self::resume) ignores it in favor of the
    /// checkpoint's own breaker bank.
    pub fn presume_lost(mut self, devices: &[Device]) -> Self {
        self.lost = devices.to_vec();
        self
    }

    /// Send trace events to `sink` (default: the disabled
    /// [`NULL_SINK`], which makes instrumentation zero-cost).
    pub fn sink(mut self, sink: &'a dyn TraceSink) -> Self {
        self.sink = sink;
        self
    }

    /// Attach an online per-level policy cell: each cross-architecture
    /// level consults its bandit instead of Algorithm 3's fixed `(M, N)`
    /// rules, and realized level costs are observed back into it. A
    /// passthrough cell (frozen, never updated) takes the plain offline
    /// path, bit-identical to not attaching one. Default: none.
    pub fn policy(mut self, cell: &'a PolicyCell) -> Self {
        self.policy = Some(cell);
        self
    }

    /// Resolve the platform into concrete devices and parameters.
    fn resolve(&self) -> (&'a ArchSpec, &'a ArchSpec, &'a Link, CrossParams) {
        match self.platform {
            Platform::Runtime { rt, stats } => {
                let params = self.params.unwrap_or_else(|| rt.predict_params(stats));
                (&rt.cpu, &rt.gpu, &rt.link, params)
            }
            Platform::Explicit { cpu, gpu, link } => {
                let params = self.params.expect("on_platform always sets params");
                (cpu, gpu, link, params)
            }
        }
    }

    /// Start the full degradation ladder from the configured source.
    pub fn run(self) -> Result<RecoveredRun, XbfsError> {
        let Some(source) = self.source else {
            return Err(XbfsError::InvalidArgument {
                what: "RunSession::run needs a source vertex (call .source(v))".into(),
            });
        };
        let (cpu, gpu, link, params) = self.resolve();
        execute_fresh(
            &ExecArgs {
                csr: self.csr,
                cpu,
                gpu,
                link,
                params: &params,
                plan: &self.plan,
                config: &self.config,
                lost: &self.lost,
                sink: self.sink,
                policy: self.policy,
            },
            source,
        )
    }

    /// Resume the ladder from `checkpoint` (typically loaded from a spill
    /// file after a crash). The source comes from the checkpoint; a
    /// configured [`source`](Self::source) is ignored.
    pub fn resume(self, checkpoint: &LevelCheckpoint) -> Result<RecoveredRun, XbfsError> {
        let (cpu, gpu, link, params) = self.resolve();
        execute_resume(
            &ExecArgs {
                csr: self.csr,
                cpu,
                gpu,
                link,
                params: &params,
                plan: &self.plan,
                config: &self.config,
                lost: &self.lost,
                sink: self.sink,
                policy: self.policy,
            },
            checkpoint,
        )
    }
}

/// One lane's result inside a [`BatchRun`]: the source it traversed from
/// and a full [`RecoveredRun`] — parents, levels, per-level records, and a
/// per-lane report, exactly what a solo [`RunSession`] would have produced.
#[derive(Clone, Debug)]
pub struct LaneRun {
    /// Zero-based lane index within the batch word.
    pub lane: u32,
    /// BFS source vertex of the lane.
    pub source: VertexId,
    /// The lane's Graph 500–validated traversal and audit report.
    pub run: RecoveredRun,
}

/// A completed batched traversal: one [`LaneRun`] per source, in the order
/// the sources were given.
#[derive(Clone, Debug)]
pub struct BatchRun {
    /// Per-lane results, one per source.
    pub lanes: Vec<LaneRun>,
    /// Lockstep rounds executed (the deepest lane's level count).
    pub rounds: u32,
    /// Simulated seconds for the whole batch — every lane completes at
    /// this instant, because the lanes share each round's sweeps.
    pub total_seconds: f64,
}

/// The batched sibling of [`RunSession`]: up to 64 sources traverse the
/// graph as one lane-packed batch on the simulated platform.
///
/// The lanes advance in *lockstep rounds*. Each round makes one
/// cross-combination placement decision per lane (the same Algorithm 3
/// latch a solo run would make, driven by the lane's own frontier), then
/// charges the simulated clock **once per placement group**: lanes that
/// share a sweep direction and device this round cost the batch only the
/// slowest lane's level time, because a lane-packed kernel serves the
/// whole `u64` word in one sweep ([`xbfs_engine::run_multi`] is the
/// real-hardware counterpart). Lanes handing off CPU→GPU in the same
/// round likewise share one link transfer. That is the amortization that
/// makes a k-query burst cost ~one traversal instead of k.
///
/// Per-lane *results* are exactly the solo results: each lane's parents,
/// levels, and [`LevelRecord`](xbfs_engine::LevelRecord)s are produced by
/// the same per-lane sequential stepping a solo [`RunSession`] uses, so a
/// k-source batch is bit-identical to k solo runs — only the shared clock
/// differs. With one source the session delegates wholesale to the
/// single-source path: output, records, *and report JSON* match
/// [`RunSession::run`] byte for byte.
///
/// Fault plans, checkpoints, and mid-run scrubbing are single-source
/// concerns and are not offered here; the service batches only queries
/// without fault plans. A configured deadline bounds the whole batch
/// clock.
///
/// ```no_run
/// use xbfs_core::prelude::*;
/// # let runtime = AdaptiveRuntime::quick_trained();
/// # let csr = xbfs_graph::rmat::rmat_csr(8, 8);
/// # let stats = xbfs_graph::GraphStats::rmat(&csr, 0.57, 0.19, 0.19, 0.05);
/// let batch = BatchSession::new(&runtime, &csr, &stats)
///     .sources(&[0, 7, 42])
///     .run()?;
/// assert_eq!(batch.lanes.len(), 3);
/// # Ok::<(), XbfsError>(())
/// ```
pub struct BatchSession<'a> {
    csr: &'a Csr,
    platform: Platform<'a>,
    params: Option<CrossParams>,
    sources: Vec<VertexId>,
    config: ResilienceConfig,
    window: u32,
    sink: &'a dyn TraceSink,
    policy: Option<&'a PolicyCell>,
}

impl<'a> BatchSession<'a> {
    /// A batch session on a trained runtime — the batched sibling of
    /// [`RunSession::new`].
    pub fn new(runtime: &'a AdaptiveRuntime, csr: &'a Csr, stats: &'a GraphStats) -> Self {
        Self {
            csr,
            platform: Platform::Runtime { rt: runtime, stats },
            params: None,
            sources: Vec::new(),
            config: ResilienceConfig::default_runtime(),
            window: 0,
            sink: &NULL_SINK,
            policy: None,
        }
    }

    /// A batch session on explicit device specs — the batched sibling of
    /// [`RunSession::on_platform`].
    pub fn on_platform(
        csr: &'a Csr,
        cpu: &'a ArchSpec,
        gpu: &'a ArchSpec,
        link: &'a Link,
        params: &CrossParams,
    ) -> Self {
        Self {
            csr,
            platform: Platform::Explicit { cpu, gpu, link },
            params: Some(*params),
            sources: Vec::new(),
            config: ResilienceConfig::default_runtime(),
            window: 0,
            sink: &NULL_SINK,
            policy: None,
        }
    }

    /// Set the batch's source vertices, one lane each (required;
    /// `1..=64`). Duplicates are allowed and ride separate lanes.
    pub fn sources(mut self, sources: &[VertexId]) -> Self {
        self.sources = sources.to_vec();
        self
    }

    /// Override the cross-combination switch parameters.
    pub fn params(mut self, params: CrossParams) -> Self {
        self.params = Some(params);
        self
    }

    /// Replace the failure-handling configuration. Only the deadline
    /// applies to a multi-lane batch; the single-lane path honors all of
    /// it, exactly like [`RunSession`].
    pub fn resilience(mut self, config: ResilienceConfig) -> Self {
        self.config = config;
        self
    }

    /// Annotate the batch's trace events with the service batching window
    /// that collected it (0 = built outside the service; default).
    pub fn window(mut self, window: u32) -> Self {
        self.window = window;
        self
    }

    /// Send trace events to `sink` (default: the disabled [`NULL_SINK`]).
    pub fn sink(mut self, sink: &'a dyn TraceSink) -> Self {
        self.sink = sink;
        self
    }

    /// Attach an online per-level policy cell — the batched sibling of
    /// [`RunSession::policy`]. Each lane consults the bandit with its own
    /// frontier features and observes its own solo-equivalent level cost
    /// (own level time, plus its own transfer price when it crosses).
    pub fn policy(mut self, cell: &'a PolicyCell) -> Self {
        self.policy = Some(cell);
        self
    }

    fn resolve(&self) -> (&'a ArchSpec, &'a ArchSpec, &'a Link, CrossParams) {
        match self.platform {
            Platform::Runtime { rt, stats } => {
                let params = self.params.unwrap_or_else(|| rt.predict_params(stats));
                (&rt.cpu, &rt.gpu, &rt.link, params)
            }
            Platform::Explicit { cpu, gpu, link } => {
                let params = self.params.expect("on_platform always sets params");
                (cpu, gpu, link, params)
            }
        }
    }

    /// Run the batch to completion.
    ///
    /// # Errors
    /// [`XbfsError::InvalidArgument`] for an empty or oversized batch,
    /// [`XbfsError::BadSource`] for an out-of-range source,
    /// [`XbfsError::DeadlineExceeded`] if the batch clock blows a
    /// configured deadline, and any error of the single-source ladder when
    /// the batch carries one lane.
    pub fn run(self) -> Result<BatchRun, XbfsError> {
        if self.sources.is_empty() || self.sources.len() > MAX_LANES {
            return Err(XbfsError::InvalidArgument {
                what: format!(
                    "batch carries {} sources; 1..={MAX_LANES} lanes fit one u64 word",
                    self.sources.len()
                ),
            });
        }
        let n = self.csr.num_vertices();
        for &s in &self.sources {
            if s >= n {
                return Err(XbfsError::BadSource {
                    source: s,
                    num_vertices: n,
                });
            }
        }
        let (cpu, gpu, link, params) = self.resolve();
        params.validate()?;
        self.config.validate()?;

        if self.sources.len() == 1 {
            return self.run_single_lane(cpu, gpu, link, &params);
        }
        self.run_lockstep(cpu, gpu, link, &params)
    }

    /// One lane: delegate wholesale to the single-source ladder so the
    /// result — parents, records, report JSON — is bit-identical to
    /// [`RunSession::run`] under the same configuration.
    fn run_single_lane(
        &self,
        cpu: &ArchSpec,
        gpu: &ArchSpec,
        link: &Link,
        params: &CrossParams,
    ) -> Result<BatchRun, XbfsError> {
        let source = self.sources[0];
        if self.sink.enabled() {
            self.sink.record(&TraceEvent::BatchBegin {
                lanes: 1,
                window: self.window,
                at_s: 0.0,
            });
        }
        let run = execute_fresh(
            &ExecArgs {
                csr: self.csr,
                cpu,
                gpu,
                link,
                params,
                plan: &FaultPlan::none(),
                config: &self.config,
                lost: &[],
                sink: self.sink,
                policy: self.policy,
            },
            source,
        )?;
        if self.sink.enabled() {
            self.sink.record(&TraceEvent::BatchEnd {
                lanes: 1,
                levels: run.report.levels_executed,
                at_s: run.report.total_seconds,
            });
        }
        Ok(BatchRun {
            rounds: run.report.levels_executed,
            total_seconds: run.report.total_seconds,
            lanes: vec![LaneRun {
                lane: 0,
                source,
                run,
            }],
        })
    }

    /// Two or more lanes: per-lane sequential stepping (solo-exact
    /// results), batch-grouped pricing (amortized clock).
    fn run_lockstep(
        &self,
        cpu: &ArchSpec,
        gpu: &ArchSpec,
        link: &Link,
        params: &CrossParams,
    ) -> Result<BatchRun, XbfsError> {
        let lanes = self.sources.len();
        let n = self.csr.num_vertices();
        let traced = self.sink.enabled();
        if traced {
            self.sink.record(&TraceEvent::BatchBegin {
                lanes: lanes as u32,
                window: self.window,
                at_s: 0.0,
            });
        }

        let mut states: Vec<TraversalState> = self
            .sources
            .iter()
            .map(|&s| TraversalState::start(self.csr, s))
            .collect();
        let mut drivers: Vec<CrossDriver> = (0..lanes).map(|_| CrossDriver::new(*params)).collect();
        let mut handed_off = vec![false; lanes];
        let mut clock = 0.0_f64;
        let mut rounds: u32 = 0;
        // Passthrough cells take the exact pre-policy path (no feature
        // folds, no PolicyDecision events) — see `RunSession::policy`.
        let policy = self.policy.filter(|cell| !cell.borrow().is_passthrough());

        loop {
            // Advance every unfinished lane one level; its own driver makes
            // the same placement decision a solo run would (or the bandit's,
            // when an online policy is attached).
            let mut stepped: Vec<(usize, Placement, xbfs_engine::LevelRecord)> = Vec::new();
            let mut decisions: Vec<Option<Decision>> = Vec::new();
            let mut crossed_now = vec![false; lanes];
            for lane in 0..lanes {
                if states[lane].is_complete() {
                    continue;
                }
                let decision = policy.map(|cell| {
                    let ctx = policy_online::switch_context_for(self.csr, &states[lane]);
                    let offline = drivers[lane].offline_placement(&ctx);
                    cell.borrow().decide(&ctx, handed_off[lane], offline)
                });
                let pl = match decision {
                    Some(d) => drivers[lane].step_forced(self.csr, &mut states[lane], d.placement),
                    None => drivers[lane].step(self.csr, &mut states[lane]),
                }
                .expect("incomplete lane always steps");
                let rec = *states[lane].levels.last().expect("step pushed a record");
                if let Some(d) = decision {
                    if traced {
                        self.sink.record(&TraceEvent::PolicyDecision {
                            level: rec.level,
                            bin: d.bin,
                            device: pl.device(),
                            direction: pl.direction(),
                            explore: d.explore,
                            at_s: clock,
                        });
                    }
                }
                stepped.push((lane, pl, rec));
                decisions.push(decision);
            }
            if stepped.is_empty() {
                break;
            }

            // Lanes crossing CPU→GPU this round share ONE transfer: the
            // lane-packed frontier word ships together.
            let crossing: Vec<&(usize, Placement, xbfs_engine::LevelRecord)> = stepped
                .iter()
                .filter(|(lane, pl, _)| pl.on_gpu() && !handed_off[*lane])
                .collect();
            if !crossing.is_empty() {
                let frontier_vertices: u64 = crossing
                    .iter()
                    .map(|(_, _, rec)| rec.frontier_vertices)
                    .sum();
                let bytes = Link::handoff_bytes(n as u64, frontier_vertices);
                let seconds = link.transfer_time(bytes);
                if traced {
                    self.sink.record(&TraceEvent::Transfer {
                        level: rounds,
                        bytes,
                        attempt: 0,
                        start_s: clock,
                        end_s: clock + seconds,
                        ok: true,
                    });
                }
                clock += seconds;
                for (lane, _, _) in &crossing {
                    handed_off[*lane] = true;
                    crossed_now[*lane] = true;
                }
            }

            // Each lane's bandit reward is its *solo-equivalent* cost: its
            // own level time plus its own transfer price when it crossed —
            // not the amortized group charge, which would credit a lane for
            // savings its placement did not cause.
            if let Some(cell) = policy {
                let mut run = cell.borrow_mut();
                for ((lane, pl, rec), d) in stepped.iter().zip(&decisions) {
                    let Some(d) = d else { continue };
                    let arch = if pl.on_gpu() { gpu } else { cpu };
                    let mut cost_s = cost::level_time_for_record(arch, rec);
                    if crossed_now[*lane] {
                        cost_s += link
                            .transfer_time(Link::handoff_bytes(n as u64, rec.frontier_vertices));
                    }
                    run.observe(d.bin, *pl, cost_s);
                }
            }

            // Charge each placement group once: one sweep serves the whole
            // word, bounded by the group's slowest lane.
            for placement in [
                Placement::CpuTd,
                Placement::CpuBu,
                Placement::GpuTd,
                Placement::GpuBu,
            ] {
                let group: Vec<&(usize, Placement, xbfs_engine::LevelRecord)> = stepped
                    .iter()
                    .filter(|(_, pl, _)| *pl == placement)
                    .collect();
                if group.is_empty() {
                    continue;
                }
                let arch = if placement.on_gpu() { gpu } else { cpu };
                let seconds = group
                    .iter()
                    .map(|(_, _, rec)| cost::level_time_for_record(arch, rec))
                    .fold(0.0_f64, f64::max);
                if traced {
                    let device = if placement.on_gpu() { "gpu" } else { "cpu" };
                    self.sink.record(&TraceEvent::BatchLevel {
                        device,
                        level: rounds,
                        direction: placement.direction(),
                        lanes: group.len() as u32,
                        frontier_vertices: group
                            .iter()
                            .map(|(_, _, rec)| rec.frontier_vertices)
                            .sum(),
                        edges_examined: group.iter().map(|(_, _, rec)| rec.edges_examined).sum(),
                        seconds,
                        at_s: clock,
                    });
                }
                clock += seconds;
            }

            if let Some(budget_s) = self.config.deadline_s {
                if clock > budget_s {
                    return Err(XbfsError::DeadlineExceeded {
                        budget_s,
                        elapsed_s: clock,
                    });
                }
            }
            rounds += 1;
        }

        if traced {
            self.sink.record(&TraceEvent::BatchEnd {
                lanes: lanes as u32,
                levels: rounds,
                at_s: clock,
            });
        }

        let mut lane_runs = Vec::with_capacity(lanes);
        for (lane, (state, &source)) in states.into_iter().zip(&self.sources).enumerate() {
            let traversal = state.into_traversal();
            validate(self.csr, &traversal.output)?;
            let report = RunReport {
                rung: Rung::CrossCpuGpu,
                rungs_tried: vec![Rung::CrossCpuGpu],
                skipped_rungs: Vec::new(),
                events: Vec::new(),
                retries: 0,
                recovery_seconds: 0.0,
                total_seconds: clock,
                breaker_transitions: Vec::new(),
                checkpoints_taken: 0,
                checkpoint_bytes: 0,
                checkpoint_seconds: 0.0,
                resumed_from_level: None,
                levels_replayed: 0,
                levels_executed: traversal.levels.len() as u32,
                edges_examined: traversal.levels.iter().map(|r| r.edges_examined).sum(),
                saved_seconds: 0.0,
                resumes: Vec::new(),
                corruption_detected: 0,
                corruption_repairs: 0,
            };
            lane_runs.push(LaneRun {
                lane: lane as u32,
                source,
                run: RecoveredRun {
                    output: traversal.output,
                    report,
                },
            });
        }
        Ok(BatchRun {
            lanes: lane_runs,
            rounds,
            total_seconds: clock,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recovery::Rung;
    use xbfs_engine::trace::MemorySink;
    use xbfs_engine::{validate, FixedMN};

    fn setup() -> (Csr, u32, ArchSpec, ArchSpec, Link, CrossParams) {
        let g = xbfs_graph::rmat::rmat_csr(10, 16);
        let src = crate::training::pick_source(&g, 3).unwrap();
        (
            g,
            src,
            ArchSpec::cpu_sandy_bridge(),
            ArchSpec::gpu_k20x(),
            Link::pcie3(),
            CrossParams {
                handoff: FixedMN::new(64.0, 64.0),
                gpu: FixedMN::new(14.0, 24.0),
            },
        )
    }

    #[test]
    fn missing_source_is_a_typed_error() {
        let (g, _, cpu, gpu, link, params) = setup();
        let err = RunSession::on_platform(&g, &cpu, &gpu, &link, &params)
            .run()
            .unwrap_err();
        assert!(matches!(err, XbfsError::InvalidArgument { .. }));
    }

    #[test]
    fn healthy_session_serves_on_the_top_rung() {
        let (g, src, cpu, gpu, link, params) = setup();
        let run = RunSession::on_platform(&g, &cpu, &gpu, &link, &params)
            .source(src)
            .run()
            .expect("healthy run");
        assert_eq!(run.report.rung, Rung::CrossCpuGpu);
        assert_eq!(validate(&g, &run.output), Ok(()));
    }

    #[test]
    fn sink_receives_a_trace_without_changing_the_run() {
        let (g, src, cpu, gpu, link, params) = setup();
        let silent = RunSession::on_platform(&g, &cpu, &gpu, &link, &params)
            .source(src)
            .run()
            .expect("silent run");
        let sink = MemorySink::new();
        let traced = RunSession::on_platform(&g, &cpu, &gpu, &link, &params)
            .source(src)
            .sink(&sink)
            .run()
            .expect("traced run");
        assert_eq!(traced.output, silent.output);
        assert_eq!(traced.report, silent.report);
        assert!(!sink.is_empty(), "trace must not be empty");
    }

    #[test]
    fn presumed_lost_gpu_skips_the_cross_rung() {
        let (g, src, cpu, gpu, link, params) = setup();
        let run = RunSession::on_platform(&g, &cpu, &gpu, &link, &params)
            .source(src)
            .presume_lost(&[Device::Gpu])
            .run()
            .expect("degraded run");
        assert_eq!(run.report.rung, Rung::CpuOnly);
        assert!(run.report.skipped_rungs.contains(&Rung::CrossCpuGpu));
        assert_eq!(validate(&g, &run.output), Ok(()));
        // The pre-seeded loss appears as a t=0 breaker transition, so the
        // per-query trace explains *why* the cross rung was skipped.
        assert!(run
            .report
            .breaker_transitions
            .iter()
            .any(|t| t.device == Device::Gpu && t.at_s == 0.0));
    }

    #[test]
    fn checkpoints_builder_only_touches_the_checkpoint_policy() {
        let (g, src, cpu, gpu, link, params) = setup();
        let run = RunSession::on_platform(&g, &cpu, &gpu, &link, &params)
            .source(src)
            .checkpoints(CheckpointPolicy::every(1))
            .run()
            .expect("checkpointing run");
        assert!(run.report.checkpoints_taken > 0);
        let off = RunSession::on_platform(&g, &cpu, &gpu, &link, &params)
            .source(src)
            .checkpoints(CheckpointPolicy::disabled())
            .run()
            .expect("non-checkpointing run");
        assert_eq!(off.report.checkpoints_taken, 0);
        assert_eq!(run.output, off.output);
    }

    #[test]
    fn single_lane_batch_is_bit_identical_to_run_session() {
        let (g, src, cpu, gpu, link, params) = setup();
        let solo = RunSession::on_platform(&g, &cpu, &gpu, &link, &params)
            .source(src)
            .run()
            .expect("solo run");
        let batch = BatchSession::on_platform(&g, &cpu, &gpu, &link, &params)
            .sources(&[src])
            .run()
            .expect("one-lane batch");
        assert_eq!(batch.lanes.len(), 1);
        let lane = &batch.lanes[0];
        assert_eq!(lane.run.output, solo.output);
        assert_eq!(lane.run.report, solo.report);
        assert_eq!(lane.run.report.to_json(), solo.report.to_json());
        assert_eq!(batch.total_seconds, solo.report.total_seconds);
    }

    #[test]
    fn multi_lane_batch_matches_solo_sessions_per_lane() {
        let (g, src, cpu, gpu, link, params) = setup();
        let sources = [src, 0, 5, 77];
        let batch = BatchSession::on_platform(&g, &cpu, &gpu, &link, &params)
            .sources(&sources)
            .run()
            .expect("batch run");
        assert_eq!(batch.lanes.len(), sources.len());
        for (lane, &source) in batch.lanes.iter().zip(&sources) {
            assert_eq!(lane.source, source);
            let solo = RunSession::on_platform(&g, &cpu, &gpu, &link, &params)
                .source(source)
                .run()
                .expect("solo run");
            assert_eq!(lane.run.output, solo.output, "lane {} diverged", lane.lane);
            assert_eq!(validate(&g, &lane.run.output), Ok(()));
            assert_eq!(lane.run.report.total_seconds, batch.total_seconds);
        }
    }

    #[test]
    fn batch_clock_beats_sum_of_solo_clocks() {
        let (g, src, cpu, gpu, link, params) = setup();
        let sources: Vec<u32> = (0..8).map(|i| (src + i * 41) % g.num_vertices()).collect();
        let batch = BatchSession::on_platform(&g, &cpu, &gpu, &link, &params)
            .sources(&sources)
            .run()
            .expect("batch run");
        let solo_sum: f64 = sources
            .iter()
            .map(|&s| {
                RunSession::on_platform(&g, &cpu, &gpu, &link, &params)
                    .source(s)
                    .run()
                    .expect("solo run")
                    .report
                    .total_seconds
            })
            .sum();
        assert!(
            batch.total_seconds < solo_sum,
            "batched {} s must amortize below {} s of solo runs",
            batch.total_seconds,
            solo_sum
        );
    }

    #[test]
    fn batch_bounds_are_typed_errors() {
        let (g, src, cpu, gpu, link, params) = setup();
        let empty = BatchSession::on_platform(&g, &cpu, &gpu, &link, &params)
            .run()
            .unwrap_err();
        assert!(matches!(empty, XbfsError::InvalidArgument { .. }));
        let oversized = BatchSession::on_platform(&g, &cpu, &gpu, &link, &params)
            .sources(&vec![src; MAX_LANES + 1])
            .run()
            .unwrap_err();
        assert!(matches!(oversized, XbfsError::InvalidArgument { .. }));
        let bad = BatchSession::on_platform(&g, &cpu, &gpu, &link, &params)
            .sources(&[g.num_vertices()])
            .run()
            .unwrap_err();
        assert!(matches!(bad, XbfsError::BadSource { .. }));
    }

    #[test]
    fn batch_deadline_aborts_the_whole_batch() {
        let (g, src, cpu, gpu, link, params) = setup();
        let mut config = ResilienceConfig::default_runtime();
        config.deadline_s = Some(1e-12);
        let err = BatchSession::on_platform(&g, &cpu, &gpu, &link, &params)
            .sources(&[src, 0, 5])
            .resilience(config)
            .run()
            .unwrap_err();
        assert!(matches!(err, XbfsError::DeadlineExceeded { .. }));
    }

    #[test]
    fn batch_trace_brackets_rounds_with_begin_and_end() {
        let (g, src, cpu, gpu, link, params) = setup();
        let sink = MemorySink::new();
        let batch = BatchSession::on_platform(&g, &cpu, &gpu, &link, &params)
            .sources(&[src, 0, 5])
            .window(4)
            .sink(&sink)
            .run()
            .expect("traced batch");
        let events = sink.events();
        assert!(matches!(
            events.first(),
            Some(TraceEvent::BatchBegin {
                lanes: 3,
                window: 4,
                ..
            })
        ));
        assert!(matches!(
            events.last(),
            Some(TraceEvent::BatchEnd { lanes: 3, .. })
        ));
        let rounds_traced = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::BatchLevel { .. }))
            .count();
        assert!(rounds_traced >= batch.rounds as usize);
        // The traced run is priced identically to a silent one.
        let silent = BatchSession::on_platform(&g, &cpu, &gpu, &link, &params)
            .sources(&[src, 0, 5])
            .run()
            .expect("silent batch");
        assert_eq!(batch.total_seconds, silent.total_seconds);
    }
}
