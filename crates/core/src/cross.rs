//! The cross-architecture combination (the paper's Algorithm 3).
//!
//! `CPUTD+GPUCB`: the CPU runs top-down while the frontier is small
//! (`|E|cq < |E|/M1` **and** `|V|cq < |V|/N1`); at the first violation the
//! traversal state is shipped over the link and the GPU finishes the graph,
//! choosing per level between top-down and bottom-up with `(M2, N2)`.
//! Control never returns to the CPU — the paper found the tail levels are
//! better served by the GPU's lower launch overhead than by paying another
//! transfer (§IV).
//!
//! Two entry points:
//! * [`cost_cross`] — price a parameter choice against a
//!   [`TraversalProfile`] in O(depth); used by the oracle sweeps, training
//!   and Fig. 8.
//! * [`run_cross`] — actually execute the traversal level by level with
//!   the engine kernels, producing a validated [`CrossRun`]; used by the
//!   examples, Table IV/V and the end-to-end tests.

use serde::{Deserialize, Serialize};
use xbfs_archsim::{cost, ArchSpec, Link, TraversalProfile};
use xbfs_engine::{
    Direction, FixedMN, SwitchContext, SwitchPolicy, Traversal, TraversalState, XbfsError,
};
use xbfs_graph::{Csr, VertexId};

/// Where one BFS level ran.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// Top-down on the CPU.
    CpuTd,
    /// Bottom-up on the CPU. Algorithm 3 never emits this — the paper's
    /// CPU phase is a top-down prefix — but the online policy may place a
    /// peak level here when the learned cost means favor it.
    CpuBu,
    /// Top-down on the GPU.
    GpuTd,
    /// Bottom-up on the GPU.
    GpuBu,
}

impl Placement {
    /// The traversal direction of this placement.
    pub fn direction(self) -> Direction {
        match self {
            Placement::CpuTd | Placement::GpuTd => Direction::TopDown,
            Placement::CpuBu | Placement::GpuBu => Direction::BottomUp,
        }
    }

    /// `true` if this placement runs on the GPU.
    pub fn on_gpu(self) -> bool {
        matches!(self, Placement::GpuTd | Placement::GpuBu)
    }

    /// Static device label ("cpu" / "gpu") for trace events.
    pub fn device(self) -> &'static str {
        if self.on_gpu() {
            "gpu"
        } else {
            "cpu"
        }
    }
}

impl std::fmt::Display for Placement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Placement::CpuTd => write!(f, "CPUTD"),
            Placement::CpuBu => write!(f, "CPUBU"),
            Placement::GpuTd => write!(f, "GPUTD"),
            Placement::GpuBu => write!(f, "GPUBU"),
        }
    }
}

/// Parameters of Algorithm 3.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CrossParams {
    /// `(M1, N1)` — stay on the CPU while the frontier is below both
    /// thresholds.
    pub handoff: FixedMN,
    /// `(M2, N2)` — the GPU-internal top-down/bottom-up switch.
    pub gpu: FixedMN,
}

impl CrossParams {
    /// Handoff semantics of line 9 of Algorithm 3: CPU top-down iff the
    /// frontier is strictly below both thresholds.
    fn stays_on_cpu(&self, ctx: &SwitchContext) -> bool {
        !self.handoff.wants_bottom_up(ctx)
    }

    /// Validate both threshold pairs: finite and strictly positive.
    ///
    /// [`try_cost_cross`] and [`try_run_cross`] share this single gate, so
    /// the oracle's costing and the real executor can never disagree about
    /// which parameters are legal.
    pub fn validate(&self) -> Result<(), XbfsError> {
        FixedMN::try_new(self.handoff.m, self.handoff.n)?;
        FixedMN::try_new(self.gpu.m, self.gpu.n)?;
        Ok(())
    }

    /// The placement Algorithm 3 would choose at `ctx`, given whether the
    /// one-way handoff already fired — the offline baseline the online
    /// policy explores first in every feature bin.
    pub fn offline_placement(&self, ctx: &SwitchContext, handed_off: bool) -> Placement {
        if !handed_off && self.stays_on_cpu(ctx) {
            Placement::CpuTd
        } else if self.gpu.wants_bottom_up(ctx) {
            Placement::GpuBu
        } else {
            Placement::GpuTd
        }
    }
}

/// Decide the placement of every level of `profile` per Algorithm 3.
///
/// The CPU phase is a *prefix*: once any level triggers the handoff, all
/// remaining levels run on the GPU (the inner `while` of Algorithm 3).
pub fn placement_script(profile: &TraversalProfile, params: &CrossParams) -> Vec<Placement> {
    let mut on_gpu = false;
    profile
        .levels
        .iter()
        .map(|lp| {
            let ctx = cost::switch_context(profile, lp);
            if !on_gpu && params.stays_on_cpu(&ctx) {
                Placement::CpuTd
            } else {
                on_gpu = true;
                if params.gpu.wants_bottom_up(&ctx) {
                    Placement::GpuBu
                } else {
                    Placement::GpuTd
                }
            }
        })
        .collect()
}

/// The priced execution plan of a cross-architecture traversal.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CrossCost {
    /// Placement per level.
    pub placements: Vec<Placement>,
    /// Simulated seconds per level (compute only).
    pub level_seconds: Vec<f64>,
    /// Seconds spent on the CPU→GPU handoff transfer (0 if it never fires).
    pub transfer_seconds: f64,
    /// Total simulated seconds.
    pub total_seconds: f64,
}

/// Fallible [`cost_cross`]: validates `params` before pricing, so bad
/// thresholds surface as [`XbfsError::InvalidSwitchParams`] instead of a
/// nonsense plan.
pub fn try_cost_cross(
    profile: &TraversalProfile,
    cpu: &ArchSpec,
    gpu: &ArchSpec,
    link: &Link,
    params: &CrossParams,
) -> Result<CrossCost, XbfsError> {
    params.validate()?;
    Ok(cost_cross(profile, cpu, gpu, link, params))
}

/// Price Algorithm 3 with `params` against a profile.
pub fn cost_cross(
    profile: &TraversalProfile,
    cpu: &ArchSpec,
    gpu: &ArchSpec,
    link: &Link,
    params: &CrossParams,
) -> CrossCost {
    let placements = placement_script(profile, params);
    let mut level_seconds = Vec::with_capacity(placements.len());
    let mut transfer_seconds = 0.0;
    let mut prev_on_gpu = false;
    for (lp, &pl) in profile.levels.iter().zip(&placements) {
        if pl.on_gpu() && !prev_on_gpu {
            let bytes = Link::handoff_bytes(profile.total_vertices, lp.frontier_vertices);
            transfer_seconds += link.transfer_time(bytes);
            prev_on_gpu = true;
        }
        let arch = if pl.on_gpu() { gpu } else { cpu };
        level_seconds.push(cost::level_time(arch, lp, pl.direction()));
    }
    let total_seconds = level_seconds.iter().sum::<f64>() + transfer_seconds;
    CrossCost {
        placements,
        level_seconds,
        transfer_seconds,
        total_seconds,
    }
}

/// A policy adapter so the engine driver can execute Algorithm 3: it
/// resolves placements and remembers them for post-hoc charging.
struct CrossPolicy {
    params: CrossParams,
    on_gpu: bool,
    placements: Vec<Placement>,
    /// One-shot placement override installed by
    /// [`CrossDriver::step_forced`]; consumed by the next decision.
    force: Option<Placement>,
}

impl SwitchPolicy for CrossPolicy {
    fn direction(&mut self, ctx: &SwitchContext) -> Direction {
        let placement = match self.force.take() {
            Some(forced) => {
                if forced.on_gpu() {
                    self.on_gpu = true;
                }
                forced
            }
            None => {
                let pl = self.params.offline_placement(ctx, self.on_gpu);
                if pl.on_gpu() {
                    self.on_gpu = true;
                }
                pl
            }
        };
        self.placements.push(placement);
        placement.direction()
    }
}

/// A stepwise executor of Algorithm 3: one [`step`](CrossDriver::step) per
/// level over a [`TraversalState`], with the handoff latch and placement
/// log exposed so a caller can pause at any level boundary, checkpoint,
/// and resume — including resuming a *partially executed* cross traversal
/// whose CPU→GPU handoff already happened.
pub struct CrossDriver {
    policy: CrossPolicy,
}

impl CrossDriver {
    /// Driver for a fresh traversal (level 0, CPU phase).
    pub fn new(params: CrossParams) -> Self {
        Self {
            policy: CrossPolicy {
                params,
                on_gpu: false,
                placements: Vec::new(),
                force: None,
            },
        }
    }

    /// Driver resuming mid-traversal: `placements` are the levels already
    /// executed (one per level of the resumed state) and `handed_off`
    /// tells the driver whether the one-way CPU→GPU handoff has already
    /// fired — Algorithm 3's control never returns to the CPU, so the
    /// latch is part of the resumable state.
    pub fn resume(params: CrossParams, handed_off: bool, placements: Vec<Placement>) -> Self {
        Self {
            policy: CrossPolicy {
                params,
                on_gpu: handed_off,
                placements,
                force: None,
            },
        }
    }

    /// `true` once the traversal state lives on the GPU.
    pub fn handed_off(&self) -> bool {
        self.policy.on_gpu
    }

    /// Placement per executed level, in order.
    pub fn placements(&self) -> &[Placement] {
        &self.policy.placements
    }

    /// Consume the driver, keeping the placement log.
    pub fn into_placements(self) -> Vec<Placement> {
        self.policy.placements
    }

    /// Execute one level of `state`, returning its placement — `None` once
    /// the traversal is complete.
    pub fn step(&mut self, csr: &Csr, state: &mut TraversalState) -> Option<Placement> {
        state.step(csr, &mut self.policy)?;
        self.policy.placements.last().copied()
    }

    /// Execute one level of `state` under an externally chosen
    /// `placement` (the online policy's decision hook), bypassing the
    /// `(M1, N1)`/`(M2, N2)` rules for this level only. A GPU placement
    /// still latches the one-way handoff; the offline rules resume for
    /// any later un-forced [`step`](Self::step).
    pub fn step_forced(
        &mut self,
        csr: &Csr,
        state: &mut TraversalState,
        placement: Placement,
    ) -> Option<Placement> {
        self.policy.force = Some(placement);
        let got = state.step(csr, &mut self.policy);
        if got.is_none() {
            self.policy.force = None;
        }
        got?;
        self.policy.placements.last().copied()
    }

    /// The offline placement the `(M1, N1)`/`(M2, N2)` rules would choose
    /// at `ctx` given the driver's current handoff latch.
    pub fn offline_placement(&self, ctx: &SwitchContext) -> Placement {
        self.policy
            .params
            .offline_placement(ctx, self.policy.on_gpu)
    }
}

/// A fully executed cross-architecture traversal.
#[derive(Clone, Debug)]
pub struct CrossRun {
    /// The real traversal (parents, levels, per-level trace).
    pub traversal: Traversal,
    /// Placement per level.
    pub placements: Vec<Placement>,
    /// Simulated seconds per level.
    pub level_seconds: Vec<f64>,
    /// Seconds charged for the CPU→GPU handoff.
    pub transfer_seconds: f64,
    /// Total simulated seconds.
    pub total_seconds: f64,
}

/// Execute Algorithm 3 for real: engine kernels traverse `csr`, placements
/// follow `params`, and the simulated clock charges each level on its
/// device plus the handoff transfer.
///
/// # Examples
/// ```
/// use xbfs_archsim::{ArchSpec, Link};
/// use xbfs_core::cross::{run_cross, CrossParams};
/// use xbfs_engine::FixedMN;
///
/// let g = xbfs_graph::rmat::rmat_csr(10, 16);
/// let params = CrossParams {
///     handoff: FixedMN::new(64.0, 64.0),
///     gpu: FixedMN::new(14.0, 24.0),
/// };
/// let run = run_cross(
///     &g, 0,
///     &ArchSpec::cpu_sandy_bridge(),
///     &ArchSpec::gpu_k20x(),
///     &Link::pcie3(),
///     &params,
/// );
/// assert!(xbfs_engine::validate(&g, &run.traversal.output).is_ok());
/// assert_eq!(run.placements.len(), run.level_seconds.len());
/// ```
/// Fallible [`run_cross`]: validates `params` (the same gate as
/// [`try_cost_cross`]) and the source vertex before executing.
pub fn try_run_cross(
    csr: &Csr,
    source: VertexId,
    cpu: &ArchSpec,
    gpu: &ArchSpec,
    link: &Link,
    params: &CrossParams,
) -> Result<CrossRun, XbfsError> {
    params.validate()?;
    if source >= csr.num_vertices() {
        return Err(XbfsError::BadSource {
            source,
            num_vertices: csr.num_vertices(),
        });
    }
    Ok(run_cross(csr, source, cpu, gpu, link, params))
}

pub fn run_cross(
    csr: &Csr,
    source: VertexId,
    cpu: &ArchSpec,
    gpu: &ArchSpec,
    link: &Link,
    params: &CrossParams,
) -> CrossRun {
    let mut driver = CrossDriver::new(*params);
    let mut state = TraversalState::start(csr, source);
    let mut level_seconds = Vec::new();
    let mut transfer_seconds = 0.0;
    let mut prev_on_gpu = false;
    while let Some(pl) = driver.step(csr, &mut state) {
        let rec = state.levels.last().expect("step just pushed a record");
        if pl.on_gpu() && !prev_on_gpu {
            let bytes = Link::handoff_bytes(csr.num_vertices() as u64, rec.frontier_vertices);
            transfer_seconds += link.transfer_time(bytes);
            prev_on_gpu = true;
        }
        let arch = if pl.on_gpu() { gpu } else { cpu };
        level_seconds.push(cost::level_time_for_record(arch, rec));
    }
    let total_seconds = level_seconds.iter().sum::<f64>() + transfer_seconds;
    CrossRun {
        traversal: state.into_traversal(),
        placements: driver.into_placements(),
        level_seconds,
        transfer_seconds,
        total_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbfs_archsim::profile;
    use xbfs_engine::validate;

    fn setup() -> (Csr, TraversalProfile, ArchSpec, ArchSpec, Link) {
        let g = xbfs_graph::rmat::rmat_csr(12, 16);
        let p = profile(&g, 0);
        (
            g,
            p,
            ArchSpec::cpu_sandy_bridge(),
            ArchSpec::gpu_k20x(),
            Link::pcie3(),
        )
    }

    fn paperish_params() -> CrossParams {
        CrossParams {
            handoff: FixedMN::new(64.0, 64.0),
            gpu: FixedMN::new(14.0, 24.0),
        }
    }

    #[test]
    fn placement_is_cpu_prefix_then_gpu() {
        let (_, p, ..) = setup();
        let script = placement_script(&p, &paperish_params());
        let first_gpu = script.iter().position(|pl| pl.on_gpu());
        if let Some(k) = first_gpu {
            assert!(script[..k].iter().all(|&pl| pl == Placement::CpuTd));
            assert!(script[k..].iter().all(|pl| pl.on_gpu()), "{script:?}");
        }
        // With these thresholds on an R-MAT graph both phases must occur.
        assert!(script[0] == Placement::CpuTd, "{script:?}");
        assert!(script.iter().any(|pl| pl.on_gpu()), "{script:?}");
    }

    #[test]
    fn gpu_tail_switches_back_to_topdown() {
        // The CPUTD+GPUCB signature (Table IV): the last levels are GPUTD.
        let (_, p, ..) = setup();
        let script = placement_script(&p, &paperish_params());
        assert_eq!(*script.last().unwrap(), Placement::GpuTd, "{script:?}");
        assert!(script.contains(&Placement::GpuBu), "{script:?}");
    }

    #[test]
    fn transfer_charged_exactly_once() {
        let (_, p, cpu, gpu, link) = setup();
        let c = cost_cross(&p, &cpu, &gpu, &link, &paperish_params());
        assert!(c.transfer_seconds > 0.0);
        // Handoff for this graph: 4096-bit bitmap + small frontier.
        let lo = link.transfer_time(Link::handoff_bytes(4096, 0));
        let hi = link.transfer_time(Link::handoff_bytes(4096, 4096));
        assert!(c.transfer_seconds >= lo && c.transfer_seconds <= hi);
    }

    #[test]
    fn all_cpu_params_mean_no_transfer() {
        let (_, p, cpu, gpu, link) = setup();
        let params = CrossParams {
            handoff: FixedMN::new(1e-6, 1e-6), // thresholds above any frontier
            gpu: FixedMN::new(14.0, 24.0),
        };
        let c = cost_cross(&p, &cpu, &gpu, &link, &params);
        assert_eq!(c.transfer_seconds, 0.0);
        assert!(c.placements.iter().all(|&pl| pl == Placement::CpuTd));
    }

    #[test]
    fn immediate_handoff_runs_all_gpu() {
        let (_, p, cpu, gpu, link) = setup();
        let params = CrossParams {
            handoff: FixedMN::new(1e9, 1e9), // any frontier triggers handoff
            gpu: FixedMN::new(14.0, 24.0),
        };
        let c = cost_cross(&p, &cpu, &gpu, &link, &params);
        assert!(c.placements.iter().all(|pl| pl.on_gpu()));
        assert!(c.transfer_seconds > 0.0);
    }

    #[test]
    fn cost_matches_run_on_same_placements() {
        // The profile-based costing and the real executor must agree.
        let (g, p, cpu, gpu, link) = setup();
        let params = paperish_params();
        let c = cost_cross(&p, &cpu, &gpu, &link, &params);
        let r = run_cross(&g, 0, &cpu, &gpu, &link, &params);
        assert_eq!(c.placements, r.placements);
        assert_eq!(c.level_seconds.len(), r.level_seconds.len());
        for (a, b) in c.level_seconds.iter().zip(&r.level_seconds) {
            assert!((a - b).abs() < 1e-12, "cost {a} vs run {b}");
        }
        assert!((c.total_seconds - r.total_seconds).abs() < 1e-12);
    }

    #[test]
    fn run_cross_output_is_a_valid_bfs() {
        let (g, _, cpu, gpu, link) = setup();
        let r = run_cross(&g, 0, &cpu, &gpu, &link, &paperish_params());
        assert_eq!(validate(&g, &r.traversal.output), Ok(()));
    }

    #[test]
    fn cross_beats_single_gpu_on_scale_free() {
        // The paper's headline: CPUTD+GPUCB beats GPUCB because the CPU
        // absorbs the small early levels (Table IV: 36.1× vs 16.5×). The
        // decisive case is the GPUTD hub blowup: when an early frontier
        // contains a hub, the GPU's single-thread-per-vertex gather
        // serializes on it (Table IV's 0.158 s level 2), while CPUTD walks
        // the same level in sub-millisecond time. Start next to the
        // biggest hub so the traversal's second level is exactly that
        // pathology; the hub's existence is structural in R-MAT, so the
        // test does not depend on a particular generator stream.
        use xbfs_archsim::cost_fixed_mn;
        let g = xbfs_graph::rmat::rmat_csr(17, 32);
        let hub = (0..g.num_vertices() as u32)
            .max_by_key(|&v| g.degree(v))
            .expect("non-empty graph");
        let src = g
            .neighbors(hub)
            .iter()
            .copied()
            .min_by_key(|&v| g.degree(v))
            .expect("a scale-free hub has neighbors");
        let p = profile(&g, src);
        let cpu = ArchSpec::cpu_sandy_bridge();
        let gpu = ArchSpec::gpu_k20x();
        let link = Link::pcie3();
        let cross = crate::oracle::best_mn_cross(
            &p,
            &cpu,
            &gpu,
            &link,
            FixedMN::new(14.0, 24.0),
            &crate::oracle::MnGrid::coarse(),
        );
        let gpu_only = cost_fixed_mn(&p, &gpu, FixedMN::new(14.0, 24.0));
        assert!(
            cross.seconds < gpu_only,
            "cross {} vs gpu {}",
            cross.seconds,
            gpu_only
        );
    }

    #[test]
    fn driver_resumed_mid_traversal_matches_uninterrupted_run() {
        let (g, _, cpu, gpu, link) = setup();
        let params = paperish_params();
        let whole = run_cross(&g, 0, &cpu, &gpu, &link, &params);
        for pause_at in [1, 3, whole.placements.len() - 1] {
            // Execute a prefix, capture the driver + state, rebuild both.
            let mut driver = CrossDriver::new(params);
            let mut st = xbfs_engine::TraversalState::start(&g, 0);
            for _ in 0..pause_at {
                driver.step(&g, &mut st);
            }
            let mut resumed =
                CrossDriver::resume(params, driver.handed_off(), driver.placements().to_vec());
            let mut st = st.clone();
            while resumed.step(&g, &mut st).is_some() {}
            assert_eq!(
                resumed.placements(),
                &whole.placements[..],
                "pause {pause_at}"
            );
            let t = st.into_traversal();
            assert_eq!(t.output, whole.traversal.output, "pause {pause_at}");
            assert_eq!(t.levels, whole.traversal.levels, "pause {pause_at}");
        }
    }

    #[test]
    fn placement_display() {
        assert_eq!(Placement::CpuTd.to_string(), "CPUTD");
        assert_eq!(Placement::GpuBu.to_string(), "GPUBU");
    }
}
