//! The Fig. 8 evaluation harness.
//!
//! For one traversal, the switching point is selected from ~1,000 candidate
//! cases by five strategies — Worst, Random, Average (of all candidates),
//! Regression and Exhaustive — and the paper reports everything as speedup
//! over the worst point. The headline claims this harness reproduces:
//! Regression ≈ 95 % of Exhaustive, ~6× over Random, ~7× over Average and
//! ~695× over Worst (cross-architecture).

use crate::{
    cross::{cost_cross, CrossParams},
    oracle::{self, MnGrid},
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use xbfs_archsim::{cost_fixed_mn, ArchSpec, Link, TraversalProfile};
use xbfs_engine::FixedMN;

/// Traversal seconds achieved by each selection strategy on one graph.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct StrategyReport {
    /// Worst grid candidate.
    pub worst_seconds: f64,
    /// A uniformly random grid candidate (the paper's `rand()`).
    pub random_seconds: f64,
    /// Mean over all grid candidates.
    pub average_seconds: f64,
    /// The regression-predicted point (not constrained to the grid).
    pub regression_seconds: f64,
    /// Best grid candidate (the theoretical optimum, "Exhaustive").
    pub exhaustive_seconds: f64,
}

impl StrategyReport {
    /// Speedup of a strategy over the worst candidate (Fig. 8's y-axis).
    pub fn speedup_over_worst(&self, seconds: f64) -> f64 {
        self.worst_seconds / seconds
    }

    /// The paper's efficiency claim: `Exhaustive / Regression` time ratio,
    /// ≈0.95 when the prediction is good (they report Regression reaching
    /// 95 % of Exhaustive performance).
    pub fn regression_efficiency(&self) -> f64 {
        self.exhaustive_seconds / self.regression_seconds
    }

    /// Regression speedup over the random pick (the number printed on top
    /// of each Fig. 8 bar).
    pub fn regression_over_random(&self) -> f64 {
        self.random_seconds / self.regression_seconds
    }

    /// Regression speedup over the candidate average.
    pub fn regression_over_average(&self) -> f64 {
        self.average_seconds / self.regression_seconds
    }

    /// Regression speedup over the worst candidate (the 695× claim).
    pub fn regression_over_worst(&self) -> f64 {
        self.worst_seconds / self.regression_seconds
    }
}

fn report_from_seconds(
    seconds: impl Iterator<Item = f64>,
    regression_seconds: f64,
    seed: u64,
) -> StrategyReport {
    let all: Vec<f64> = seconds.collect();
    assert!(!all.is_empty(), "empty candidate space");
    let mut rng = StdRng::seed_from_u64(seed);
    let random = all[rng.gen_range(0..all.len())];
    StrategyReport {
        worst_seconds: all.iter().copied().fold(f64::MIN, f64::max),
        random_seconds: random,
        average_seconds: all.iter().sum::<f64>() / all.len() as f64,
        regression_seconds,
        exhaustive_seconds: all.iter().copied().fold(f64::MAX, f64::min),
    }
}

/// Evaluate the five strategies for a *single-architecture* combination.
pub fn evaluate_single(
    profile: &TraversalProfile,
    arch: &ArchSpec,
    grid: &MnGrid,
    predicted: FixedMN,
    seed: u64,
) -> StrategyReport {
    let sweep = oracle::sweep_single(profile, arch, grid);
    let regression = cost_fixed_mn(profile, arch, predicted);
    report_from_seconds(sweep.iter().map(|c| c.seconds), regression, seed)
}

/// Evaluate the five strategies for the *cross-architecture* combination:
/// candidates vary the handoff `(M1, N1)` and the GPU-internal `(M2, N2)`
/// independently over the two grids (the 4-parameter Fig. 8 space); the
/// regression entry prices the fully predicted [`CrossParams`].
#[allow(clippy::too_many_arguments)] // mirrors the experiment's real arity
pub fn evaluate_cross(
    profile: &TraversalProfile,
    cpu: &ArchSpec,
    gpu: &ArchSpec,
    link: &Link,
    handoff_grid: &MnGrid,
    gpu_grid: &MnGrid,
    predicted: CrossParams,
    seed: u64,
) -> StrategyReport {
    let sweep = oracle::sweep_cross_pairs(profile, cpu, gpu, link, handoff_grid, gpu_grid);
    let regression = cost_cross(profile, cpu, gpu, link, &predicted).total_seconds;
    report_from_seconds(sweep.iter().map(|c| c.seconds), regression, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbfs_archsim::profile;

    fn setup() -> (TraversalProfile, ArchSpec, ArchSpec, Link) {
        let g = xbfs_graph::rmat::rmat_csr(12, 16);
        (
            profile(&g, 0),
            ArchSpec::cpu_sandy_bridge(),
            ArchSpec::gpu_k20x(),
            Link::pcie3(),
        )
    }

    #[test]
    fn ordering_invariants_hold() {
        let (p, cpu, _, _) = setup();
        let r = evaluate_single(&p, &cpu, &MnGrid::coarse(), FixedMN::new(14.0, 24.0), 7);
        assert!(r.exhaustive_seconds <= r.random_seconds);
        assert!(r.exhaustive_seconds <= r.average_seconds);
        assert!(r.random_seconds <= r.worst_seconds);
        assert!(r.average_seconds <= r.worst_seconds);
        assert!(r.speedup_over_worst(r.exhaustive_seconds) >= 1.0);
    }

    #[test]
    fn perfect_prediction_matches_exhaustive() {
        let (p, cpu, _, _) = setup();
        let grid = MnGrid::coarse();
        let best = oracle::best_mn_single(&p, &cpu, &grid);
        let r = evaluate_single(&p, &cpu, &grid, best.mn, 3);
        assert!((r.regression_efficiency() - 1.0).abs() < 1e-12);
        assert_eq!(r.regression_seconds, r.exhaustive_seconds);
    }

    #[test]
    fn cross_report_is_consistent() {
        let (p, cpu, gpu, link) = setup();
        let params = CrossParams {
            handoff: FixedMN::new(64.0, 64.0),
            gpu: FixedMN::new(14.0, 24.0),
        };
        let grid = oracle::cross_pair_grid();
        let r = evaluate_cross(&p, &cpu, &gpu, &link, &grid, &grid, params, 11);
        assert!(r.exhaustive_seconds <= r.worst_seconds);
        assert!(r.regression_seconds >= r.exhaustive_seconds);
        assert!(r.regression_efficiency() <= 1.0 + 1e-12);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let (p, cpu, _, _) = setup();
        let grid = MnGrid::coarse();
        let mn = FixedMN::new(14.0, 24.0);
        let a = evaluate_single(&p, &cpu, &grid, mn, 5);
        let b = evaluate_single(&p, &cpu, &grid, mn, 5);
        assert_eq!(a, b);
        let c = evaluate_single(&p, &cpu, &grid, mn, 6);
        // Different seed may (and here does) pick a different candidate.
        assert!(a.random_seconds != c.random_seconds || a == c);
    }

    #[test]
    fn mistuned_cross_point_is_catastrophic() {
        // The 695×-scale claim in miniature: over the tied candidate space
        // (one (M, N) driving both switches) the worst point — immediate
        // handoff into always-bottom-up, stranding level 1 on the GPU's
        // sparse-frontier pathology — must be far slower than the best.
        let (_, cpu, gpu, link) = setup();
        let g = xbfs_graph::rmat::rmat_csr(16, 32);
        // A peripheral giant-component source: the catastrophe needs a
        // deep traversal, and no fixed vertex id is guaranteed to be in
        // the giant component across generator streams.
        let comps = xbfs_graph::components::connected_components(&g);
        let giant = comps.largest().expect("non-empty graph");
        let src = comps
            .members(giant)
            .into_iter()
            .min_by_key(|&v| g.degree(v))
            .expect("giant component has members");
        let p = profile(&g, src);
        let grid = oracle::cross_pair_grid();
        let sweep = oracle::sweep_cross_pairs(&p, &cpu, &gpu, &link, &grid, &grid);
        let spread = oracle::worst_cross(&sweep).seconds / oracle::best_cross(&sweep).seconds;
        assert!(spread > 3.0, "worst/best = {spread}");
    }
}
