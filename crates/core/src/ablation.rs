//! Ablation studies on the paper's design choices.
//!
//! Four questions the paper asserts answers to without measuring them:
//!
//! 1. [`efficiency_vs_training_size`] — "the prediction accuracy will be
//!    higher with more training samples" (§III-E): regression efficiency
//!    as the training set shrinks.
//! 2. [`feature_ablation`] — "the graph and platform information consist
//!    of more than ten parameters… impossible to predict manually"
//!    (§III-C): cross-validated error with the architecture block or the
//!    graph block removed.
//! 3. [`model_comparison`] — why SVM regression rather than a linear
//!    model (§II-C): CV error of ε-SVR vs ridge vs a constant predictor.
//! 4. [`link_sensitivity`] — the unstated assumption that PCIe transfer
//!    cost is negligible (§IV): how slow the link must get before the
//!    cross-architecture combination stops beating the best single device.

use crate::{
    oracle::{self, MnGrid},
    predictor::SwitchPredictor,
    training::TrainingSet,
};
use serde::{Deserialize, Serialize};
use xbfs_archsim::{ArchSpec, Link, TraversalProfile};
use xbfs_svm::{Dataset, Regressor, Ridge, Svr, SvrConfig};

/// One point of the training-size sweep.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SizePoint {
    /// Training samples used.
    pub samples: usize,
    /// Mean `exhaustive / regression` time ratio over the test traversals
    /// (1.0 = perfect prediction).
    pub mean_efficiency: f64,
}

/// Take every sample whose index is `< keep` when counted round-robin —
/// subsetting by stride keeps all four architecture pairs represented.
fn subset(ts: &TrainingSet, keep: usize) -> TrainingSet {
    let n = ts.len();
    let keep = keep.min(n);
    let mut dataset_m = Dataset::new(ts.dataset_m.dim());
    let mut dataset_n = Dataset::new(ts.dataset_n.dim());
    let mut labels = Vec::new();
    // Round-robin across architecture pairs so every pair stays
    // represented even in tiny subsets (a plain stride would alias with
    // the 4-pair period of the label layout and drop whole pairs).
    let mut groups: Vec<(&str, Vec<usize>)> = Vec::new();
    for (i, label) in ts.labels.iter().enumerate() {
        match groups.iter_mut().find(|(name, _)| *name == label.pair) {
            Some((_, v)) => v.push(i),
            None => groups.push((&label.pair, vec![i])),
        }
    }
    let mut order = Vec::with_capacity(keep);
    let mut round = 0;
    while order.len() < keep {
        let mut advanced = false;
        for (_, members) in &groups {
            if order.len() == keep {
                break;
            }
            if let Some(&i) = members.get(round) {
                order.push(i);
                advanced = true;
            }
        }
        if !advanced {
            break;
        }
        round += 1;
    }
    order.sort_unstable();
    for &i in &order {
        dataset_m.push(ts.dataset_m.sample(i).to_vec(), ts.dataset_m.target(i));
        dataset_n.push(ts.dataset_n.sample(i).to_vec(), ts.dataset_n.target(i));
        labels.push(ts.labels[i].clone());
    }
    TrainingSet {
        dataset_m,
        dataset_n,
        labels,
    }
}

/// A test traversal for efficiency evaluation.
pub struct TestCase {
    /// Profiled traversal.
    pub profile: TraversalProfile,
    /// Graph statistics (the predictor's input).
    pub stats: xbfs_graph::GraphStats,
}

/// Regression efficiency (exhaustive/regression) of a predictor on one
/// cross-architecture test case.
pub fn cross_efficiency(
    predictor: &SwitchPredictor,
    case: &TestCase,
    cpu: &ArchSpec,
    gpu: &ArchSpec,
    link: &Link,
    grid: &MnGrid,
) -> f64 {
    let params = predictor.predict_cross(&case.stats, cpu, gpu);
    let regression = crate::cross::cost_cross(&case.profile, cpu, gpu, link, &params).total_seconds;
    let best = oracle::best_cross(&oracle::sweep_cross_pairs(
        &case.profile,
        cpu,
        gpu,
        link,
        grid,
        grid,
    ))
    .seconds;
    best / regression
}

/// Ablation 1: efficiency as a function of training-set size.
pub fn efficiency_vs_training_size(
    full: &TrainingSet,
    sizes: &[usize],
    cases: &[TestCase],
    cpu: &ArchSpec,
    gpu: &ArchSpec,
    link: &Link,
) -> Vec<SizePoint> {
    let grid = oracle::cross_pair_grid();
    sizes
        .iter()
        .map(|&samples| {
            let ts = subset(full, samples);
            let predictor = SwitchPredictor::train(&ts);
            let mean: f64 = cases
                .iter()
                .map(|c| cross_efficiency(&predictor, c, cpu, gpu, link, &grid))
                .sum::<f64>()
                / cases.len().max(1) as f64;
            SizePoint {
                samples: ts.len(),
                mean_efficiency: mean,
            }
        })
        .collect()
}

/// Which feature columns to keep (the Fig. 7 layout: 0–5 graph, 6–11
/// architecture).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeatureSet {
    /// All twelve features.
    Full,
    /// Graph block only (architecture columns zeroed).
    GraphOnly,
    /// Architecture blocks only (graph columns zeroed).
    ArchOnly,
}

impl FeatureSet {
    fn mask(self, x: &[f64]) -> Vec<f64> {
        let mut out = x.to_vec();
        match self {
            FeatureSet::Full => {}
            FeatureSet::GraphOnly => out[6..].iter_mut().for_each(|v| *v = 0.0),
            FeatureSet::ArchOnly => out[..6].iter_mut().for_each(|v| *v = 0.0),
        }
        out
    }
}

fn masked_dataset(ts: &TrainingSet, features: FeatureSet) -> Dataset {
    Dataset::from_samples(
        (0..ts.dataset_m.len())
            .map(|i| features.mask(ts.dataset_m.sample(i)))
            .collect(),
        ts.dataset_m.targets().to_vec(),
    )
}

fn ablation_config(dim: usize) -> SvrConfig {
    let mut cfg = SvrConfig::default_for_dim(dim);
    cfg.c = 1000.0;
    cfg.epsilon = 2.0;
    cfg
}

/// 4-fold CV mean-squared error of an SVR on the masked `dataset_m`.
pub fn feature_ablation(ts: &TrainingSet, features: FeatureSet) -> f64 {
    let masked = masked_dataset(ts, features);
    let cfg = ablation_config(masked.dim());
    xbfs_svm::model_selection::cross_validate(&masked, cfg, 4.min(masked.len()))
}

/// In-sample mean-squared error of an SVR fit on the masked `dataset_m` —
/// the information-content half of ablation 2, complementing the
/// generalization story of [`feature_ablation`].
///
/// Cross-validation cannot expose the architecture block on a small
/// training set: the block's value is the pair×graph *interaction*, and a
/// held-out (graph, pair) cell is exactly the interaction the remaining
/// folds never saw. Fit error can: with the block masked, the samples of
/// one graph collapse to identical feature vectors whose differing best-M
/// targets put an irreducible within-graph variance floor under *any*
/// regressor, while the full feature set separates them.
pub fn feature_fit(ts: &TrainingSet, features: FeatureSet) -> f64 {
    let masked = masked_dataset(ts, features);
    let cfg = ablation_config(masked.dim());
    Svr::fit(&masked, cfg).mse(&masked)
}

/// CV errors for ablation 3: `(svr, ridge, constant-mean)`.
pub fn model_comparison(ts: &TrainingSet) -> (f64, f64, f64) {
    let data = &ts.dataset_m;
    let k = 4.min(data.len());
    let mut svr_err = 0.0;
    let mut ridge_err = 0.0;
    let mut const_err = 0.0;
    for fold in 0..k {
        let mut train = Dataset::new(data.dim());
        let mut test = Dataset::new(data.dim());
        for (i, (x, y)) in data.iter().enumerate() {
            if i % k == fold {
                test.push(x.to_vec(), y);
            } else {
                train.push(x.to_vec(), y);
            }
        }
        let mut cfg = SvrConfig::default_for_dim(data.dim());
        cfg.c = 1000.0;
        cfg.epsilon = 2.0;
        let svr = Svr::fit(&train, cfg);
        let ridge = Ridge::fit(&train, 1.0);
        let mean = train.targets().iter().sum::<f64>() / train.len() as f64;
        svr_err += svr.mse(&test);
        ridge_err += ridge.mse(&test);
        const_err += test
            .targets()
            .iter()
            .map(|t| (t - mean) * (t - mean))
            .sum::<f64>()
            / test.len() as f64;
    }
    (
        svr_err / k as f64,
        ridge_err / k as f64,
        const_err / k as f64,
    )
}

/// One point of the link sweep.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkPoint {
    /// Bandwidth in bytes/s.
    pub bandwidth_bps: f64,
    /// Best cross-architecture time at this bandwidth.
    pub cross_seconds: f64,
    /// Best single-device time (CPU or GPU, whichever wins).
    pub single_seconds: f64,
}

impl LinkPoint {
    /// `true` if the cross-architecture plan still wins.
    pub fn cross_wins(&self) -> bool {
        self.cross_seconds < self.single_seconds
    }
}

/// Ablation 4: sweep link bandwidth and report when cross-architecture
/// stops paying. Latency is scaled with bandwidth degradation.
pub fn link_sensitivity(
    profile: &TraversalProfile,
    cpu: &ArchSpec,
    gpu: &ArchSpec,
    bandwidths_bps: &[f64],
) -> Vec<LinkPoint> {
    let grid = oracle::cross_pair_grid();
    let single_grid = MnGrid::paper_1000();
    let single = oracle::best_mn_single(profile, cpu, &single_grid)
        .seconds
        .min(oracle::best_mn_single(profile, gpu, &single_grid).seconds);
    bandwidths_bps
        .iter()
        .map(|&bw| {
            let base = Link::pcie3();
            let slowdown = base.bandwidth_bps / bw;
            let link = Link::new(base.latency_s * slowdown, bw);
            let cross = oracle::best_cross(&oracle::sweep_cross_pairs(
                profile, cpu, gpu, &link, &grid, &grid,
            ))
            .seconds;
            LinkPoint {
                bandwidth_bps: bw,
                cross_seconds: cross,
                single_seconds: single,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::{generate, paper_arch_pairs, pick_source, TrainingConfig};
    use xbfs_archsim::profile;

    fn setup() -> (TrainingSet, Vec<TestCase>) {
        let ts = generate(
            &TrainingConfig::quick(),
            &paper_arch_pairs(),
            &Link::pcie3(),
        );
        let cases = [(11u32, 16u32), (12, 16)]
            .iter()
            .map(|&(s, ef)| {
                let g = xbfs_graph::rmat::rmat_csr(s, ef);
                let src = pick_source(&g, 1).unwrap();
                TestCase {
                    profile: profile(&g, src),
                    stats: xbfs_graph::GraphStats::rmat(&g, 0.57, 0.19, 0.19, 0.05),
                }
            })
            .collect();
        (ts, cases)
    }

    #[test]
    fn subset_preserves_pair_diversity() {
        let (ts, _) = setup();
        let half = subset(&ts, ts.len() / 2);
        assert_eq!(half.len(), ts.len() / 2);
        for name in ["CPU", "GPU", "MIC", "CPU+GPU"] {
            assert!(half.labels.iter().any(|l| l.pair == name), "lost {name}");
        }
    }

    #[test]
    fn training_size_sweep_produces_sane_efficiencies() {
        let (ts, cases) = setup();
        let cpu = ArchSpec::cpu_sandy_bridge();
        let gpu = ArchSpec::gpu_k20x();
        let points =
            efficiency_vs_training_size(&ts, &[4, ts.len()], &cases, &cpu, &gpu, &Link::pcie3());
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(
                p.mean_efficiency > 0.0 && p.mean_efficiency <= 1.0 + 1e-9,
                "{p:?}"
            );
        }
    }

    #[test]
    fn arch_features_matter_across_pairs() {
        // With four architecture pairs sharing graphs, the same graph maps
        // to different best-M per pair. Masking the architecture block
        // turns those samples into identical feature vectors with
        // conflicting targets, so no regressor can fit below the
        // within-graph variance floor — the full feature set can.
        let (ts, _) = setup();
        let full = feature_fit(&ts, FeatureSet::Full);
        let graph_only = feature_fit(&ts, FeatureSet::GraphOnly);
        assert!(
            graph_only > 2.0 * full,
            "graph-only fit {graph_only} vs full {full}"
        );
    }

    #[test]
    fn svr_beats_constant_predictor() {
        let (ts, _) = setup();
        let (svr, _ridge, constant) = model_comparison(&ts);
        assert!(svr.is_finite() && constant.is_finite());
        assert!(svr <= constant, "svr {svr} vs constant {constant}");
    }

    #[test]
    fn slow_links_kill_the_cross_architecture_win() {
        let g = xbfs_graph::rmat::rmat_csr(14, 16);
        let src = pick_source(&g, 2).unwrap();
        let p = profile(&g, src);
        let cpu = ArchSpec::cpu_sandy_bridge();
        let gpu = ArchSpec::gpu_k20x();
        let points = link_sensitivity(&p, &cpu, &gpu, &[6e9, 6e6, 6e3]);
        // Cross time degrades monotonically as the link slows...
        assert!(points[0].cross_seconds <= points[1].cross_seconds);
        assert!(points[1].cross_seconds <= points[2].cross_seconds);
        // ...and an absurdly slow link erases any win (the sweep may then
        // pick an all-CPU or all-GPU plan, which ties single-device).
        assert!(
            points[2].cross_seconds >= points[2].single_seconds * 0.99,
            "{points:?}"
        );
    }
}
