//! Decision audits: was the predicted `(M, N)` any good, and where did the
//! simulated time actually go?
//!
//! The paper's contribution is a *prediction* — regression-picked switch
//! points that are supposed to land within ≈95 % of the exhaustive optimum
//! with <0.1 % overhead. A [`DecisionAudit`] checks that claim on a real
//! run: it re-prices the predicted [`CrossParams`] and the exhaustive best
//! pair over the same [`TraversalProfile`] (the 900-candidate Fig. 8 sweep
//! of [`crate::oracle::sweep_cross_pairs`]), compares predicted vs realized
//! switch levels, and attributes every simulated second of the recorded
//! trace to a `(level, device, phase)` cell using the [`TraceEvent`] stream
//! a [`MemorySink`](xbfs_engine::MemorySink) buffered.
//!
//! The audit is pure data: serializable to JSON for `BENCH_<n>.json`
//! artifacts and renderable as Prometheus gauges via
//! [`crate::observe::prometheus_audit_text`].

use crate::{
    cross::{cost_cross, CrossParams},
    oracle::{best_cross, cross_pair_grid, sweep_cross_pairs},
    recovery::RunReport,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use xbfs_archsim::{ArchSpec, Link, TraversalProfile};
use xbfs_engine::{TraceEvent, XbfsError};

/// Simulated seconds attributed to one `(level, device)` cell.
///
/// Kernel time is further decomposed into the cost model's fixed-overhead
/// and work components when the trace carries
/// [`TraceEvent::KernelCost`] breakdowns (it always does on the
/// resilient path). Devices follow the trace vocabulary: `"cpu"`/`"gpu"`
/// for kernels, `"link"` for transfers, `"ladder"` for retry backoffs and
/// checkpoint captures.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LevelAttribution {
    /// Level index the seconds served.
    pub level: u32,
    /// Device lane ("cpu", "gpu", "link", "ladder").
    pub device: String,
    /// Kernel-attempt seconds (including failed attempts).
    pub kernel_s: f64,
    /// Fixed per-level overhead component of the kernel charge.
    pub overhead_s: f64,
    /// Work component of the kernel charge.
    pub work_s: f64,
    /// Transfer seconds across the link.
    pub transfer_s: f64,
    /// Retry-backoff seconds.
    pub backoff_s: f64,
    /// Checkpoint-capture seconds.
    pub checkpoint_s: f64,
}

impl LevelAttribution {
    /// Total simulated seconds in this cell.
    pub fn total_s(&self) -> f64 {
        self.kernel_s + self.transfer_s + self.backoff_s + self.checkpoint_s
    }
}

/// Total simulated seconds in one `phase/device` bucket across all levels.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PhaseSeconds {
    /// Phase kind ("kernel", "transfer", "backoff", "checkpoint").
    pub phase: String,
    /// Device lane the phase charged.
    pub device: String,
    /// Simulated seconds.
    pub seconds: f64,
}

/// The complete audit of one adaptive run's switching decision.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DecisionAudit {
    /// The parameters the predictor chose.
    pub predicted: CrossParams,
    /// The exhaustive-sweep optimum over the same profile.
    pub oracle: CrossParams,
    /// Fault-free simulated seconds of the predicted parameters.
    pub predicted_seconds: f64,
    /// Fault-free simulated seconds of the oracle parameters.
    pub oracle_seconds: f64,
    /// `oracle_seconds / predicted_seconds` — equivalently predicted TEPS
    /// as a fraction of oracle TEPS. 1.0 means the prediction *is* the
    /// optimum; the paper claims ≈0.95 on average.
    pub efficiency: f64,
    /// Simulated seconds lost to the prediction: `predicted_seconds -
    /// oracle_seconds` (0 when the prediction is optimal).
    pub regret_seconds: f64,
    /// First level the predicted placement script puts on the GPU
    /// (`None` = the handoff never fires).
    pub predicted_switch_level: Option<u32>,
    /// First level the oracle placement script puts on the GPU.
    pub oracle_switch_level: Option<u32>,
    /// First level the *recorded run* actually executed on the GPU under
    /// the cross rung (`None` when the cross rung never reached the GPU —
    /// degraded runs, or an unfired handoff).
    pub realized_switch_level: Option<u32>,
    /// Label of the rung that served the traversal.
    pub served_rung: String,
    /// Total simulated seconds of the audited run (from its [`RunReport`];
    /// includes faults, retries, and checkpoint charges, so it can exceed
    /// `predicted_seconds`).
    pub total_seconds: f64,
    /// Wall seconds spent computing the prediction itself.
    pub prediction_overhead_s: f64,
    /// `prediction_overhead_s / (prediction_overhead_s + total_seconds)` —
    /// the paper claims <0.1 %. Zero when both terms are zero.
    pub prediction_overhead_fraction: f64,
    /// Per-`(level, device)` simulated-time attribution, sorted by level
    /// then device.
    pub levels: Vec<LevelAttribution>,
    /// Per-`phase/device` totals, sorted by phase then device.
    pub phases: Vec<PhaseSeconds>,
}

impl DecisionAudit {
    /// Serialize to a JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("DecisionAudit serializes")
    }

    /// Parse from JSON.
    pub fn from_json(s: &str) -> Result<Self, XbfsError> {
        serde_json::from_str(s).map_err(|e| XbfsError::InvalidArgument {
            what: format!("decision audit parse error: {e:?}"),
        })
    }

    /// Whether the audited prediction reached `fraction` of the oracle's
    /// TEPS (the paper's claim holds at `meets(0.9)` per graph, ≈0.95 on
    /// average).
    pub fn meets(&self, fraction: f64) -> bool {
        self.efficiency >= fraction
    }

    /// Total attributed seconds in one phase across devices.
    pub fn phase_total(&self, phase: &str) -> f64 {
        self.phases
            .iter()
            .filter(|p| p.phase == phase)
            .map(|p| p.seconds)
            .sum()
    }
}

/// First GPU level of a placement script, if any.
fn switch_level(placements: &[crate::cross::Placement]) -> Option<u32> {
    placements.iter().position(|p| p.on_gpu()).map(|i| i as u32)
}

fn op_device(op: &str) -> &'static str {
    match op {
        "cpu-kernel" => "cpu",
        "gpu-kernel" => "gpu",
        "transfer" => "link",
        _ => "ladder",
    }
}

/// Build the audit for one recorded run.
///
/// * `profile` must describe the same traversal the run executed (same
///   graph, same source) — it drives both the oracle sweep and the
///   placement scripts.
/// * `predicted` is what the predictor chose (the run's parameters).
/// * `events` is the run's buffered trace; `report` its [`RunReport`].
/// * `prediction_overhead_s` is the measured wall time of the prediction
///   itself (pass 0.0 when the caller didn't time it).
///
/// The oracle side sweeps the full 900-candidate pair grid, which costs
/// `O(900 × depth)` — trivial next to a traversal but not free; audit
/// after the run, not inside it.
#[allow(clippy::too_many_arguments)]
pub fn decision_audit(
    profile: &TraversalProfile,
    cpu: &ArchSpec,
    gpu: &ArchSpec,
    link: &Link,
    predicted: &CrossParams,
    events: &[TraceEvent],
    report: &RunReport,
    prediction_overhead_s: f64,
) -> DecisionAudit {
    let grid = cross_pair_grid();
    let oracle = best_cross(&sweep_cross_pairs(profile, cpu, gpu, link, &grid, &grid));
    let predicted_cost = cost_cross(profile, cpu, gpu, link, predicted);
    let oracle_cost = cost_cross(profile, cpu, gpu, link, &oracle.params);

    let predicted_seconds = predicted_cost.total_seconds;
    let oracle_seconds = oracle_cost.total_seconds;
    let efficiency = if predicted_seconds > 0.0 {
        oracle_seconds / predicted_seconds
    } else {
        1.0
    };

    let realized_switch_level = events.iter().find_map(|ev| match ev {
        TraceEvent::Level {
            rung: "cross",
            device: "gpu",
            level,
            ..
        } => Some(*level),
        _ => None,
    });

    // (level, device) -> attribution cell.
    fn cell<'a>(
        cells: &'a mut BTreeMap<(u32, &'static str), LevelAttribution>,
        level: u32,
        device: &'static str,
    ) -> &'a mut LevelAttribution {
        cells
            .entry((level, device))
            .or_insert_with(|| LevelAttribution {
                level,
                device: device.to_string(),
                kernel_s: 0.0,
                overhead_s: 0.0,
                work_s: 0.0,
                transfer_s: 0.0,
                backoff_s: 0.0,
                checkpoint_s: 0.0,
            })
    }
    let mut cells: BTreeMap<(u32, &'static str), LevelAttribution> = BTreeMap::new();
    let mut phases: BTreeMap<(&'static str, &'static str), f64> = BTreeMap::new();
    for ev in events {
        match ev {
            TraceEvent::Kernel {
                device,
                level,
                start_s,
                end_s,
                ..
            } => {
                let s = end_s - start_s;
                cell(&mut cells, *level, device).kernel_s += s;
                *phases.entry(("kernel", device)).or_insert(0.0) += s;
            }
            TraceEvent::KernelCost {
                device,
                level,
                overhead_s,
                work_s,
                ..
            } => {
                let cost = cell(&mut cells, *level, device);
                cost.overhead_s += overhead_s;
                cost.work_s += work_s;
            }
            TraceEvent::Transfer {
                level,
                start_s,
                end_s,
                ..
            } => {
                let s = end_s - start_s;
                cell(&mut cells, *level, "link").transfer_s += s;
                *phases.entry(("transfer", "link")).or_insert(0.0) += s;
            }
            TraceEvent::Backoff {
                op,
                level,
                start_s,
                end_s,
                ..
            } => {
                let s = end_s - start_s;
                let device = op_device(op);
                cell(&mut cells, *level, device).backoff_s += s;
                *phases.entry(("backoff", device)).or_insert(0.0) += s;
            }
            TraceEvent::Checkpoint {
                level,
                start_s,
                end_s,
                ..
            } => {
                let s = end_s - start_s;
                cell(&mut cells, *level, "ladder").checkpoint_s += s;
                *phases.entry(("checkpoint", "ladder")).or_insert(0.0) += s;
            }
            _ => {}
        }
    }

    let total_seconds = report.total_seconds;
    let prediction_overhead_fraction = if prediction_overhead_s > 0.0 {
        prediction_overhead_s / (prediction_overhead_s + total_seconds)
    } else {
        0.0
    };

    DecisionAudit {
        predicted: *predicted,
        oracle: oracle.params,
        predicted_seconds,
        oracle_seconds,
        efficiency,
        regret_seconds: predicted_seconds - oracle_seconds,
        predicted_switch_level: switch_level(&predicted_cost.placements),
        oracle_switch_level: switch_level(&oracle_cost.placements),
        realized_switch_level,
        served_rung: report.rung.label().to_string(),
        total_seconds,
        prediction_overhead_s,
        prediction_overhead_fraction,
        levels: cells.into_values().collect(),
        phases: phases
            .into_iter()
            .map(|((phase, device), seconds)| PhaseSeconds {
                phase: phase.to_string(),
                device: device.to_string(),
                seconds,
            })
            .collect(),
    }
}

/// One level of a policy-driven run, priced against the exhaustive
/// oracle's plan for the same level.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PolicyLevelRegret {
    /// Level index.
    pub level: u32,
    /// Realized simulated seconds: the level's [`TraceEvent::KernelCost`]
    /// total plus any transfer charged at this level.
    pub realized_s: f64,
    /// The oracle pair's fault-free seconds for the same level (its
    /// handoff transfer included at the level where it fires).
    pub oracle_s: f64,
    /// `realized_s - oracle_s`. Negative per-level values are real: a
    /// per-level policy is free to beat any *fixed* `(M, N)` pair on
    /// individual levels.
    pub regret_s: f64,
    /// Device the traced policy decision chose, when one was recorded.
    pub device: Option<String>,
    /// Direction label (`"td"`/`"bu"`) of the traced decision.
    pub direction: Option<String>,
    /// Feature bin the decision was drawn from.
    pub bin: Option<u32>,
    /// Whether the decision was still exploring unplayed arms.
    pub explore: Option<bool>,
}

/// The audit of one *per-level* policy run (online bandit or any forced
/// placement script) against the exhaustive fixed-pair oracle.
///
/// Where [`DecisionAudit`] re-prices a predicted `(M, N)` pair,
/// `policy_audit` compares what actually ran — level by level, from the
/// trace's [`TraceEvent::KernelCost`] / [`TraceEvent::Transfer`] spans —
/// against the best *fixed* pair's plan. Because the policy chooses per
/// level, its efficiency may legitimately exceed 1.0 once the bandit has
/// learned: the oracle here is the best member of the offline family, not
/// of the policy's own (strictly larger) decision space.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PolicyAudit {
    /// The exhaustive-sweep optimum fixed pair over the profile.
    pub oracle: CrossParams,
    /// Realized simulated seconds summed over the trace's levels.
    pub realized_seconds: f64,
    /// Fault-free simulated seconds of the oracle pair.
    pub oracle_seconds: f64,
    /// `oracle_seconds / realized_seconds` (1.0 when realized is zero).
    /// Values above 1.0 mean the per-level policy beat every fixed pair.
    pub efficiency: f64,
    /// `realized_seconds - oracle_seconds`.
    pub regret_seconds: f64,
    /// Mean per-level regret (`regret_seconds / levels`, 0 for an empty
    /// trace) — the quantity the bench's query cohorts track downward.
    pub mean_level_regret_s: f64,
    /// Traced policy decisions.
    pub decisions: u32,
    /// Traced decisions still exploring unplayed arms.
    pub explorations: u32,
    /// Per-level breakdown, ascending by level.
    pub levels: Vec<PolicyLevelRegret>,
}

impl PolicyAudit {
    /// Serialize to a JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("PolicyAudit serializes")
    }

    /// Parse from JSON.
    pub fn from_json(s: &str) -> Result<Self, XbfsError> {
        serde_json::from_str(s).map_err(|e| XbfsError::InvalidArgument {
            what: format!("policy audit parse error: {e:?}"),
        })
    }
}

/// Audit a policy-driven run's trace against the exhaustive fixed-pair
/// oracle, level by level.
///
/// `profile` must describe the traversal the trace recorded; `events` is
/// the run's buffered trace (only `KernelCost`, `Transfer`, and
/// `PolicyDecision` events are read, so a fault-free cross-rung trace is
/// the intended input). Sweeps the same 900-candidate grid as
/// [`decision_audit`] — audit after the run, not inside it.
pub fn policy_audit(
    profile: &TraversalProfile,
    cpu: &ArchSpec,
    gpu: &ArchSpec,
    link: &Link,
    events: &[TraceEvent],
) -> PolicyAudit {
    let grid = cross_pair_grid();
    let oracle = best_cross(&sweep_cross_pairs(profile, cpu, gpu, link, &grid, &grid));
    let oracle_cost = cost_cross(profile, cpu, gpu, link, &oracle.params);
    let oracle_switch = switch_level(&oracle_cost.placements);

    #[derive(Default)]
    struct Realized {
        seconds: f64,
        device: Option<String>,
        direction: Option<String>,
        bin: Option<u32>,
        explore: Option<bool>,
    }
    let mut realized: BTreeMap<u32, Realized> = BTreeMap::new();
    let mut decisions = 0u32;
    let mut explorations = 0u32;
    for ev in events {
        match ev {
            TraceEvent::KernelCost { level, total_s, .. } => {
                realized.entry(*level).or_default().seconds += total_s;
            }
            TraceEvent::Transfer {
                level,
                start_s,
                end_s,
                ..
            } => {
                realized.entry(*level).or_default().seconds += end_s - start_s;
            }
            TraceEvent::PolicyDecision {
                level,
                bin,
                device,
                direction,
                explore,
                ..
            } => {
                decisions += 1;
                if *explore {
                    explorations += 1;
                }
                let r = realized.entry(*level).or_default();
                r.device = Some((*device).to_string());
                r.direction = Some(
                    match direction {
                        xbfs_engine::Direction::TopDown => "td",
                        xbfs_engine::Direction::BottomUp => "bu",
                    }
                    .to_string(),
                );
                r.bin = Some(*bin);
                r.explore = Some(*explore);
            }
            _ => {}
        }
    }

    let levels: Vec<PolicyLevelRegret> = realized
        .into_iter()
        .map(|(level, r)| {
            let mut oracle_s = oracle_cost
                .level_seconds
                .get(level as usize)
                .copied()
                .unwrap_or(0.0);
            if oracle_switch == Some(level) {
                oracle_s += oracle_cost.transfer_seconds;
            }
            PolicyLevelRegret {
                level,
                realized_s: r.seconds,
                oracle_s,
                regret_s: r.seconds - oracle_s,
                device: r.device,
                direction: r.direction,
                bin: r.bin,
                explore: r.explore,
            }
        })
        .collect();

    let realized_seconds: f64 = levels.iter().map(|l| l.realized_s).sum();
    let oracle_seconds = oracle_cost.total_seconds;
    let efficiency = if realized_seconds > 0.0 {
        oracle_seconds / realized_seconds
    } else {
        1.0
    };
    let regret_seconds = realized_seconds - oracle_seconds;
    let mean_level_regret_s = if levels.is_empty() {
        0.0
    } else {
        regret_seconds / levels.len() as f64
    };
    PolicyAudit {
        oracle: oracle.params,
        realized_seconds,
        oracle_seconds,
        efficiency,
        regret_seconds,
        mean_level_regret_s,
        decisions,
        explorations,
        levels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::CheckpointPolicy;
    use crate::runtime::AdaptiveRuntime;
    use xbfs_engine::MemorySink;
    use xbfs_graph::GraphStats;

    fn audited_run(scale: u32) -> (DecisionAudit, RunReport) {
        let rt = AdaptiveRuntime::quick_trained();
        let g = xbfs_graph::rmat::rmat_csr(scale, 16);
        let stats = GraphStats::rmat(&g, 0.57, 0.19, 0.19, 0.05);
        let src = crate::training::pick_source(&g, 3).unwrap();
        let params = rt.predict_params(&stats);
        let sink = MemorySink::new();
        let run = rt
            .session(&g, &stats)
            .source(src)
            .params(params)
            .checkpoints(CheckpointPolicy::disabled())
            .sink(&sink)
            .run()
            .expect("audited run");
        let profile = xbfs_archsim::profile(&g, src);
        let audit = decision_audit(
            &profile,
            &rt.cpu,
            &rt.gpu,
            &rt.link,
            &params,
            &sink.take(),
            &run.report,
            1e-4,
        );
        (audit, run.report)
    }

    #[test]
    fn audit_prices_both_sides_and_attributes_time() {
        let (audit, report) = audited_run(11);
        // The oracle can never lose to the prediction on the same profile.
        assert!(audit.oracle_seconds <= audit.predicted_seconds + 1e-12);
        assert!(audit.efficiency > 0.0 && audit.efficiency <= 1.0 + 1e-12);
        assert!(audit.regret_seconds >= -1e-12);
        assert_eq!(audit.served_rung, "cross");
        assert_eq!(audit.total_seconds, report.total_seconds);

        // A fault-free cross run realizes exactly the predicted switch.
        assert_eq!(audit.realized_switch_level, audit.predicted_switch_level);

        // Every simulated second of the fault-free run is attributed:
        // kernel + transfer phases must reconstruct the report's total.
        let attributed: f64 = audit.phases.iter().map(|p| p.seconds).sum();
        assert!(
            (attributed - report.total_seconds).abs() <= 1e-9 * report.total_seconds.max(1.0),
            "attributed {attributed} vs total {}",
            report.total_seconds
        );
        // Cell totals agree with phase totals.
        let cell_total: f64 = audit.levels.iter().map(|c| c.total_s()).sum();
        assert!((cell_total - attributed).abs() <= 1e-9 * attributed.max(1.0));

        // KernelCost decomposition covers the kernel time it priced.
        let kernel_s = audit.phase_total("kernel");
        let decomposed: f64 = audit.levels.iter().map(|c| c.overhead_s + c.work_s).sum();
        assert!(
            (decomposed - kernel_s).abs() <= 1e-9 * kernel_s.max(1.0),
            "decomposed {decomposed} vs kernel {kernel_s}"
        );

        // Overhead fraction is tiny but present.
        assert!(audit.prediction_overhead_fraction > 0.0);
        assert!(audit.prediction_overhead_fraction < 0.5);
    }

    #[test]
    fn audit_round_trips_through_json() {
        let (audit, _) = audited_run(10);
        let parsed = DecisionAudit::from_json(&audit.to_json()).expect("parse back");
        assert_eq!(parsed, audit);
    }

    #[test]
    fn meets_thresholds_are_monotone() {
        let (audit, _) = audited_run(10);
        assert!(audit.meets(0.0));
        if audit.meets(0.9) {
            assert!(audit.meets(0.5));
        }
        assert!(!audit.meets(1.5));
    }

    #[test]
    fn policy_audit_reconstructs_an_offline_run_and_counts_online_decisions() {
        let rt = AdaptiveRuntime::quick_trained();
        let g = xbfs_graph::rmat::rmat_csr(10, 16);
        let stats = GraphStats::rmat(&g, 0.57, 0.19, 0.19, 0.05);
        let src = crate::training::pick_source(&g, 3).unwrap();
        let params = rt.predict_params(&stats);
        let profile = xbfs_archsim::profile(&g, src);

        // Offline run: no PolicyDecision events; the realized seconds are
        // exactly the predicted pair's fault-free cost, so the audit's
        // regret matches the classic decision audit's.
        let sink = MemorySink::new();
        rt.session(&g, &stats)
            .source(src)
            .params(params)
            .checkpoints(CheckpointPolicy::disabled())
            .sink(&sink)
            .run()
            .expect("offline run");
        let audit = policy_audit(&profile, &rt.cpu, &rt.gpu, &rt.link, &sink.take());
        assert_eq!(audit.decisions, 0);
        assert_eq!(audit.explorations, 0);
        let predicted = crate::cross::cost_cross(&profile, &rt.cpu, &rt.gpu, &rt.link, &params);
        assert!(
            (audit.realized_seconds - predicted.total_seconds).abs()
                <= 1e-9 * predicted.total_seconds.max(1.0),
            "realized {} vs predicted {}",
            audit.realized_seconds,
            predicted.total_seconds
        );
        assert!(audit.oracle_seconds <= audit.realized_seconds + 1e-12);
        let level_sum: f64 = audit.levels.iter().map(|l| l.regret_s).sum();
        assert!((level_sum - audit.regret_seconds).abs() <= 1e-9);

        // Online run: every level carries a traced decision.
        let shared = crate::policy_online::SharedPolicy::online(5);
        let cell = shared.run_cell();
        let sink = MemorySink::new();
        rt.session(&g, &stats)
            .source(src)
            .params(params)
            .checkpoints(CheckpointPolicy::disabled())
            .sink(&sink)
            .policy(&cell)
            .run()
            .expect("online run");
        let online = policy_audit(&profile, &rt.cpu, &rt.gpu, &rt.link, &sink.take());
        assert!(online.decisions > 0);
        assert_eq!(online.decisions as usize, online.levels.len());
        for l in &online.levels {
            assert!(l.device.is_some() && l.direction.is_some() && l.bin.is_some());
        }
        let parsed = PolicyAudit::from_json(&online.to_json()).expect("round trip");
        assert_eq!(parsed, online);
    }
}
