//! Tiny seeded-jitter RNG shared by the recovery ladder and the circuit
//! breakers: splitmix64 folded into a `[0, 1)` uniform. Kept in one place
//! so checkpointed RNG cursors mean the same thing everywhere.

/// Advance `state` one splitmix64 step and fold to a uniform in `[0, 1)`.
pub(crate) fn splitmix_unit(state: &mut u64) -> f64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_range_and_determinism() {
        let mut a = 123u64;
        let mut b = 123u64;
        for _ in 0..1000 {
            let x = splitmix_unit(&mut a);
            assert!((0.0..1.0).contains(&x));
            assert_eq!(x, splitmix_unit(&mut b));
        }
    }
}
