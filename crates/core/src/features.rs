//! The Fig. 7 training-sample layout.
//!
//! Each sample concatenates the graph information with *two* architecture
//! blocks — the platform running top-down and the platform running
//! bottom-up (identical for single-architecture combinations):
//!
//! ```text
//! [ V, E, A, B, C, D,  P1, L1, B1,  P2, L2, B2 ]
//!   └── graph ──────┘  └─ TD arch ┘ └─ BU arch ┘
//! ```
//!
//! `V`/`E` enter as log₂ (the paper's SCALE/edgefactor parameterization);
//! raw counts spanning 2²⁰–2²⁶ would dominate every other feature even
//! after standardization.

use xbfs_archsim::ArchSpec;
use xbfs_graph::GraphStats;

/// Dimension of the feature vector.
pub const FEATURE_DIM: usize = 12;

/// Assemble the Fig. 7 feature vector for a traversal of `graph` with
/// top-down on `arch_td` and bottom-up on `arch_bu`.
pub fn feature_vector(graph: &GraphStats, arch_td: &ArchSpec, arch_bu: &ArchSpec) -> Vec<f64> {
    let mut v = Vec::with_capacity(FEATURE_DIM);
    v.push((graph.num_vertices.max(1) as f64).log2());
    v.push((graph.num_edges.max(1) as f64).log2());
    v.push(graph.a);
    v.push(graph.b);
    v.push(graph.c);
    v.push(graph.d);
    v.extend_from_slice(&arch_td.feature_triple());
    v.extend_from_slice(&arch_bu.feature_triple());
    debug_assert_eq!(v.len(), FEATURE_DIM);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbfs_graph::gen;

    fn stats() -> GraphStats {
        let g = gen::complete(8);
        GraphStats::rmat(&g, 0.57, 0.19, 0.19, 0.05)
    }

    #[test]
    fn layout_matches_fig7() {
        let cpu = ArchSpec::cpu_sandy_bridge();
        let gpu = ArchSpec::gpu_k20x();
        let v = feature_vector(&stats(), &cpu, &gpu);
        assert_eq!(v.len(), FEATURE_DIM);
        assert_eq!(v[0], 3.0); // log2(8 vertices)
        assert!((v[1] - (28f64).log2()).abs() < 1e-12);
        assert_eq!(&v[2..6], &[0.57, 0.19, 0.19, 0.05]);
        assert_eq!(&v[6..9], &[256.0, 32.0, 34.0]); // CPU: P, L1, B
        assert_eq!(&v[9..12], &[3950.0, 64.0, 188.0]); // GPU: P, L1, B
    }

    #[test]
    fn single_arch_blocks_are_identical() {
        let mic = ArchSpec::mic_knights_corner();
        let v = feature_vector(&stats(), &mic, &mic);
        assert_eq!(&v[6..9], &v[9..12]);
    }

    #[test]
    fn arch_order_matters() {
        let cpu = ArchSpec::cpu_sandy_bridge();
        let gpu = ArchSpec::gpu_k20x();
        assert_ne!(
            feature_vector(&stats(), &cpu, &gpu),
            feature_vector(&stats(), &gpu, &cpu)
        );
    }

    #[test]
    fn empty_graph_stays_finite() {
        let g = gen::path(0);
        let s = GraphStats::unknown(&g);
        let cpu = ArchSpec::cpu_sandy_bridge();
        let v = feature_vector(&s, &cpu, &cpu);
        assert!(v.iter().all(|x| x.is_finite()));
    }
}
