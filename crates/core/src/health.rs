//! Per-device circuit breakers for the recovery ladder.
//!
//! PR 1's ladder rediscovers a sick device the hard way: every rung that
//! needs it burns `max_attempts` retries before degrading. A circuit
//! breaker moves that knowledge to *rung selection* time. Each simulated
//! device ([`Device::Cpu`], [`Device::Gpu`], [`Device::Link`]) gets a
//! three-state breaker:
//!
//! ```text
//!            failures >= threshold
//!   Closed ─────────────────────────▶ Open ──┐ (permanent on DeviceLost)
//!     ▲                                │     │
//!     │ probe succeeds        cooldown │     ▼
//!     └────────────── HalfOpen ◀───────┘   stays Open
//!                        │
//!                        └── probe fails ──▶ Open
//! ```
//!
//! `Closed` admits work; `Open` rejects it until a seeded-jitter cooldown
//! elapses on the simulated clock; `HalfOpen` admits exactly the next
//! operation as a probe — success re-closes the breaker, failure re-opens
//! it. A [`FaultKind::DeviceLost`](xbfs_archsim::fault::FaultKind) event
//! opens the breaker permanently: no probe can resurrect a device that
//! fell off the bus. Every transition is recorded so a `RunReport` can
//! show exactly when the runtime stopped trusting a device, and the chaos
//! suite can assert the state machine only ever walks legal edges.

use serde::{Deserialize, Serialize};
use xbfs_engine::XbfsError;

use crate::seeded::splitmix_unit;

/// A simulated device the runtime can stop trusting.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Device {
    /// The host CPU.
    Cpu,
    /// The accelerator.
    Gpu,
    /// The host↔accelerator interconnect.
    Link,
}

impl Device {
    /// Stable lowercase name, matching the `device` strings in
    /// [`XbfsError`] fault variants.
    pub fn name(self) -> &'static str {
        match self {
            Device::Cpu => "cpu",
            Device::Gpu => "gpu",
            Device::Link => "link",
        }
    }
}

impl std::fmt::Display for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Breaker state.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    /// Healthy: operations flow.
    Closed,
    /// Tripped: operations are rejected until the cooldown elapses.
    Open,
    /// Probing: the next operation is admitted as a canary.
    HalfOpen,
}

impl BreakerState {
    /// Stable lowercase label for trace events and metrics keys.
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a breaker changed state.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransitionCause {
    /// Consecutive transient failures reached the threshold.
    FailureThreshold,
    /// The device fell off the bus — the breaker opens permanently.
    DeviceLost,
    /// The cooldown elapsed; the breaker admits a probe.
    ProbeWindow,
    /// The half-open probe failed.
    ProbeFailed,
    /// The half-open probe succeeded.
    ProbeSucceeded,
}

impl TransitionCause {
    /// Stable lowercase label for trace events and metrics keys.
    pub fn name(self) -> &'static str {
        match self {
            TransitionCause::FailureThreshold => "failure-threshold",
            TransitionCause::DeviceLost => "device-lost",
            TransitionCause::ProbeWindow => "probe-window",
            TransitionCause::ProbeFailed => "probe-failed",
            TransitionCause::ProbeSucceeded => "probe-succeeded",
        }
    }
}

/// One recorded state change of one device's breaker.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BreakerTransition {
    /// Whose breaker moved.
    pub device: Device,
    /// State before.
    pub from: BreakerState,
    /// State after.
    pub to: BreakerState,
    /// Simulated clock time of the transition.
    pub at_s: f64,
    /// Why.
    pub cause: TransitionCause,
}

/// `true` iff `from → to` is an edge of the breaker state machine. The
/// chaos suite asserts every recorded transition satisfies this — the
/// "monotone state machine" contract.
pub fn legal_transition(from: BreakerState, to: BreakerState) -> bool {
    use BreakerState::*;
    matches!(
        (from, to),
        (Closed, Open) | (Open, HalfOpen) | (HalfOpen, Closed) | (HalfOpen, Open)
    )
}

/// Breaker tuning shared by all devices.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BreakerPolicy {
    /// Consecutive transient failures that trip a closed breaker.
    pub failure_threshold: u32,
    /// Base cooldown before an open breaker admits a probe, in simulated
    /// seconds.
    pub cooldown_s: f64,
    /// Uniform jitter fraction in `[0, 1]`: each cooldown is scheduled at
    /// `cooldown_s × (1 + probe_jitter_frac × u)` with `u ~ U[0, 1)` from
    /// the breaker's seeded RNG, so co-tripped breakers don't probe in
    /// lockstep.
    pub probe_jitter_frac: f64,
}

impl BreakerPolicy {
    /// Runtime default: trip after 3 straight failures, ~2 ms simulated
    /// cooldown, 25 % probe jitter.
    pub fn default_runtime() -> Self {
        Self {
            failure_threshold: 3,
            cooldown_s: 2e-3,
            probe_jitter_frac: 0.25,
        }
    }

    /// Validate ranges.
    pub fn validate(&self) -> Result<(), XbfsError> {
        if self.failure_threshold == 0 {
            return Err(XbfsError::InvalidArgument {
                what: "breaker failure_threshold must be >= 1".into(),
            });
        }
        if !self.cooldown_s.is_finite() || self.cooldown_s < 0.0 {
            return Err(XbfsError::InvalidArgument {
                what: format!(
                    "breaker cooldown_s must be finite and non-negative, got {}",
                    self.cooldown_s
                ),
            });
        }
        if !(0.0..=1.0).contains(&self.probe_jitter_frac) {
            return Err(XbfsError::InvalidArgument {
                what: format!(
                    "breaker probe_jitter_frac must be in [0, 1], got {}",
                    self.probe_jitter_frac
                ),
            });
        }
        Ok(())
    }
}

/// The serializable dynamic state of one breaker — what a checkpoint
/// persists (the policy is supplied again at resume).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BreakerSnapshot {
    /// Current state.
    pub state: BreakerState,
    /// Consecutive transient failures seen.
    pub consecutive_failures: u32,
    /// Simulated time at which an open breaker admits a probe (finite;
    /// meaningless unless `state == Open` and not `permanent`).
    pub open_until_s: f64,
    /// `true` once the device is permanently gone.
    pub permanent: bool,
    /// The probe-jitter RNG state.
    pub rng: u64,
}

/// One device's circuit breaker.
#[derive(Clone, Debug)]
pub struct CircuitBreaker {
    device: Device,
    policy: BreakerPolicy,
    state: BreakerState,
    consecutive_failures: u32,
    open_until_s: f64,
    permanent: bool,
    rng: u64,
    transitions: Vec<BreakerTransition>,
}

impl CircuitBreaker {
    fn new(device: Device, policy: BreakerPolicy, seed: u64) -> Self {
        Self {
            device,
            policy,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            open_until_s: 0.0,
            permanent: false,
            // Decorrelate per-device probe schedules off one plan seed.
            rng: seed ^ (0xa076_1d64_78bd_642f ^ (device as u64).wrapping_mul(0x9e37_79b9)),
            transitions: Vec::new(),
        }
    }

    /// The device this breaker guards.
    pub fn device(&self) -> Device {
        self.device
    }

    /// Current state (without advancing the probe schedule).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// `true` once the breaker is open with no probe ever coming.
    pub fn permanently_open(&self) -> bool {
        self.permanent && self.state == BreakerState::Open
    }

    /// May work be sent to this device at simulated time `now_s`? An open
    /// breaker whose cooldown has elapsed moves to half-open and admits
    /// the call as its probe.
    pub fn allows(&mut self, now_s: f64) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open if !self.permanent && now_s >= self.open_until_s => {
                self.transition(BreakerState::HalfOpen, now_s, TransitionCause::ProbeWindow);
                true
            }
            BreakerState::Open => false,
        }
    }

    /// Record a failed operation. `permanent` marks device loss: the
    /// breaker opens for good.
    pub fn record_failure(&mut self, now_s: f64, permanent: bool) {
        self.consecutive_failures += 1;
        self.permanent |= permanent;
        match self.state {
            BreakerState::Closed => {
                if permanent {
                    self.open(now_s, TransitionCause::DeviceLost);
                } else if self.consecutive_failures >= self.policy.failure_threshold {
                    self.open(now_s, TransitionCause::FailureThreshold);
                }
            }
            BreakerState::HalfOpen => {
                let cause = if permanent {
                    TransitionCause::DeviceLost
                } else {
                    TransitionCause::ProbeFailed
                };
                self.open(now_s, cause);
            }
            // Already open (e.g. the device died while rejected): the
            // permanent flag is latched above; no new transition.
            BreakerState::Open => {}
        }
    }

    /// Record a successful operation: resets the failure streak and closes
    /// a half-open breaker.
    pub fn record_success(&mut self, now_s: f64) {
        self.consecutive_failures = 0;
        if self.state == BreakerState::HalfOpen {
            self.transition(BreakerState::Closed, now_s, TransitionCause::ProbeSucceeded);
        }
    }

    fn open(&mut self, now_s: f64, cause: TransitionCause) {
        let jitter = 1.0 + self.policy.probe_jitter_frac * splitmix_unit(&mut self.rng);
        self.open_until_s = now_s + self.policy.cooldown_s * jitter;
        self.transition(BreakerState::Open, now_s, cause);
    }

    fn transition(&mut self, to: BreakerState, at_s: f64, cause: TransitionCause) {
        debug_assert!(legal_transition(self.state, to), "{:?}->{to:?}", self.state);
        self.transitions.push(BreakerTransition {
            device: self.device,
            from: self.state,
            to,
            at_s,
            cause,
        });
        self.state = to;
    }

    /// Every transition so far, in order.
    pub fn transitions(&self) -> &[BreakerTransition] {
        &self.transitions
    }

    /// Snapshot the dynamic state for checkpointing.
    pub fn snapshot(&self) -> BreakerSnapshot {
        BreakerSnapshot {
            state: self.state,
            consecutive_failures: self.consecutive_failures,
            open_until_s: self.open_until_s,
            permanent: self.permanent,
            rng: self.rng,
        }
    }

    /// Restore the dynamic state from a snapshot (the transition log
    /// restarts empty — a resumed run reports its own transitions).
    pub fn restore(&mut self, snap: &BreakerSnapshot) {
        self.state = snap.state;
        self.consecutive_failures = snap.consecutive_failures;
        self.open_until_s = snap.open_until_s;
        self.permanent = snap.permanent;
        self.rng = snap.rng;
    }
}

/// Snapshot of all three device breakers, as persisted in a checkpoint.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct HealthSnapshot {
    /// CPU breaker state.
    pub cpu: BreakerSnapshot,
    /// GPU breaker state.
    pub gpu: BreakerSnapshot,
    /// Link breaker state.
    pub link: BreakerSnapshot,
}

/// The runtime's view of device health: one breaker per device.
#[derive(Clone, Debug)]
pub struct DeviceHealth {
    cpu: CircuitBreaker,
    gpu: CircuitBreaker,
    link: CircuitBreaker,
}

impl DeviceHealth {
    /// Fresh all-closed health, with probe schedules seeded from `seed`.
    pub fn new(policy: BreakerPolicy, seed: u64) -> Self {
        Self {
            cpu: CircuitBreaker::new(Device::Cpu, policy, seed),
            gpu: CircuitBreaker::new(Device::Gpu, policy, seed),
            link: CircuitBreaker::new(Device::Link, policy, seed),
        }
    }

    /// The breaker guarding `device`.
    pub fn breaker(&self, device: Device) -> &CircuitBreaker {
        match device {
            Device::Cpu => &self.cpu,
            Device::Gpu => &self.gpu,
            Device::Link => &self.link,
        }
    }

    fn breaker_mut(&mut self, device: Device) -> &mut CircuitBreaker {
        match device {
            Device::Cpu => &mut self.cpu,
            Device::Gpu => &mut self.gpu,
            Device::Link => &mut self.link,
        }
    }

    /// May work be sent to `device` now? (May move an expired open breaker
    /// to half-open.)
    pub fn allows(&mut self, device: Device, now_s: f64) -> bool {
        self.breaker_mut(device).allows(now_s)
    }

    /// Record a failure on `device`.
    pub fn record_failure(&mut self, device: Device, now_s: f64, permanent: bool) {
        self.breaker_mut(device).record_failure(now_s, permanent);
    }

    /// Record a success on `device`.
    pub fn record_success(&mut self, device: Device, now_s: f64) {
        self.breaker_mut(device).record_success(now_s);
    }

    /// The first of `devices` that refuses work right now, with its state
    /// — `None` if all admit. This is the rung-selection gate.
    pub fn first_denial(
        &mut self,
        devices: &[Device],
        now_s: f64,
    ) -> Option<(Device, BreakerState)> {
        devices.iter().copied().find_map(|d| {
            if self.allows(d, now_s) {
                None
            } else {
                Some((d, self.breaker(d).state()))
            }
        })
    }

    /// All transitions across all breakers, ordered by simulated time
    /// (stable within a device).
    pub fn transitions(&self) -> Vec<BreakerTransition> {
        let mut all: Vec<BreakerTransition> = self
            .cpu
            .transitions()
            .iter()
            .chain(self.gpu.transitions())
            .chain(self.link.transitions())
            .copied()
            .collect();
        all.sort_by(|a, b| a.at_s.total_cmp(&b.at_s).then(a.device.cmp(&b.device)));
        all
    }

    /// Snapshot all breakers for checkpointing.
    pub fn snapshot(&self) -> HealthSnapshot {
        HealthSnapshot {
            cpu: self.cpu.snapshot(),
            gpu: self.gpu.snapshot(),
            link: self.link.snapshot(),
        }
    }

    /// Restore all breakers from a snapshot.
    pub fn restore(&mut self, snap: &HealthSnapshot) {
        self.cpu.restore(&snap.cpu);
        self.gpu.restore(&snap.gpu);
        self.link.restore(&snap.link);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(Device::Gpu, BreakerPolicy::default_runtime(), 42)
    }

    #[test]
    fn threshold_failures_trip_the_breaker() {
        let mut b = breaker();
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure(0.0, false);
        b.record_failure(0.1, false);
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allows(0.2));
        b.record_failure(0.2, false);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allows(0.2));
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let mut b = breaker();
        b.record_failure(0.0, false);
        b.record_failure(0.1, false);
        b.record_success(0.2);
        b.record_failure(0.3, false);
        b.record_failure(0.4, false);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn cooldown_admits_a_probe_and_success_recloses() {
        let mut b = breaker();
        for t in 0..3 {
            b.record_failure(t as f64 * 1e-4, false);
        }
        assert_eq!(b.state(), BreakerState::Open);
        // Before the cooldown: rejected. Far after: half-open probe.
        assert!(!b.allows(3e-4));
        assert!(b.allows(1.0));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_success(1.0);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn failed_probe_reopens() {
        let mut b = breaker();
        for t in 0..3 {
            b.record_failure(t as f64 * 1e-4, false);
        }
        assert!(b.allows(1.0));
        b.record_failure(1.0, false);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allows(1.0001));
    }

    #[test]
    fn device_lost_opens_permanently() {
        let mut b = breaker();
        b.record_failure(0.5, true);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.permanently_open());
        // No cooldown ever admits a probe.
        assert!(!b.allows(1e12));
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn every_recorded_transition_is_legal() {
        let mut b = breaker();
        for i in 0..20 {
            let t = i as f64 * 1e-3;
            if i % 5 == 4 {
                b.allows(t + 10.0);
                b.record_success(t + 10.0);
            } else {
                b.allows(t);
                b.record_failure(t, false);
            }
        }
        assert!(!b.transitions().is_empty());
        for tr in b.transitions() {
            assert!(legal_transition(tr.from, tr.to), "{tr:?}");
        }
    }

    #[test]
    fn probe_schedule_is_seeded_and_jittered() {
        let cooled = |seed: u64| {
            let mut b = CircuitBreaker::new(Device::Gpu, BreakerPolicy::default_runtime(), seed);
            for _ in 0..3 {
                b.record_failure(0.0, false);
            }
            b.snapshot().open_until_s
        };
        // Deterministic per seed, different across seeds, always at least
        // the base cooldown.
        assert_eq!(cooled(1), cooled(1));
        assert_ne!(cooled(1), cooled(2));
        assert!(cooled(1) >= BreakerPolicy::default_runtime().cooldown_s);
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let mut b = breaker();
        b.record_failure(0.1, false);
        b.record_failure(0.2, false);
        b.record_failure(0.3, false);
        let snap = b.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: BreakerSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        let mut fresh = breaker();
        fresh.restore(&back);
        assert_eq!(fresh.state(), b.state());
        assert!(!fresh.allows(0.3));
        assert!(fresh.allows(1.0)); // same jittered probe schedule
    }

    #[test]
    fn health_gates_rungs_by_first_denial() {
        let mut h = DeviceHealth::new(BreakerPolicy::default_runtime(), 7);
        assert_eq!(
            h.first_denial(&[Device::Cpu, Device::Gpu, Device::Link], 0.0),
            None
        );
        h.record_failure(Device::Gpu, 0.0, true);
        let denial = h.first_denial(&[Device::Cpu, Device::Gpu, Device::Link], 0.0);
        assert_eq!(denial, Some((Device::Gpu, BreakerState::Open)));
        // A rung that only needs the CPU is unaffected.
        assert_eq!(h.first_denial(&[Device::Cpu], 0.0), None);
    }

    #[test]
    fn policy_validation() {
        assert!(BreakerPolicy::default_runtime().validate().is_ok());
        let mut p = BreakerPolicy::default_runtime();
        p.failure_threshold = 0;
        assert!(p.validate().is_err());
        let mut p = BreakerPolicy::default_runtime();
        p.cooldown_s = f64::NAN;
        assert!(p.validate().is_err());
        let mut p = BreakerPolicy::default_runtime();
        p.probe_jitter_frac = -0.1;
        assert!(p.validate().is_err());
    }
}
