//! Fault recovery: retries, deadlines, circuit breakers, checkpoints, and
//! the graceful-degradation ladder.
//!
//! The paper's Algorithm 3 is a one-shot handoff with zero failure
//! handling — fine for a benchmark, fatal for a runtime. This module wraps
//! the cross-architecture executor in a recovery policy driven by a
//! deterministic [`FaultPlan`]:
//!
//! * **Retry with exponential backoff** — transient faults (transfer
//!   failures, kernel timeouts) waste the attempt's simulated time, wait
//!   out a seeded-jitter backoff, and try again up to
//!   [`RetryPolicy::max_attempts`].
//! * **Deadline budget** — every simulated second (productive, wasted, or
//!   backoff) is charged against one clock; blowing the budget aborts the
//!   whole ladder with [`XbfsError::DeadlineExceeded`].
//! * **Degradation ladder** — when a rung fails permanently the traversal
//!   continues one rung down: `CPUTD+GPUCB` → CPU-only hybrid
//!   ([`FixedMN`]) → sequential reference BFS. Every rung's output goes
//!   through Graph 500 validation before it is allowed to count as
//!   success; a rung that produces an invalid tree is treated as faulty,
//!   never as done.
//! * **Level-granular checkpoints** — with a
//!   [`CheckpointPolicy`] enabled,
//!   the executing rung cuts a [`LevelCheckpoint`] at configurable level
//!   boundaries. A failed rung no longer drags the whole traversal back
//!   to level 0: the next rung (or, via [`resume_cross_resilient`], the
//!   next *process*) resumes from the last checkpoint, translating a
//!   GPU-resident frontier to host form when control moves down-ladder.
//! * **Per-device circuit breakers** — every operation outcome feeds a
//!   [`DeviceHealth`] bank of breakers, one per simulated device. A rung
//!   whose devices include an open breaker is skipped at *selection*
//!   time instead of burning retries rediscovering a device the runtime
//!   already knows is sick; [`FaultKind::DeviceLost`] opens a breaker
//!   permanently.
//!
//! The outcome is always one of two things: a [`RecoveredRun`] holding a
//! validated [`BfsOutput`] plus a [`RunReport`] naming the rung that
//! produced it, or a typed [`XbfsError`] — never a panic.

use crate::checkpoint::{CheckpointPolicy, LevelCheckpoint, Residency, CHECKPOINT_FORMAT_VERSION};
use crate::cross::{CrossDriver, CrossParams};
use crate::health::{BreakerPolicy, BreakerTransition, Device, DeviceHealth};
use crate::seeded::splitmix_unit;
use serde::{Deserialize, Serialize};
use xbfs_archsim::fault::{
    CorruptPayload, FaultEvent, FaultKind, FaultOp, FaultPlan, FaultSession,
};
use xbfs_archsim::{cost, ArchSpec, Link};
use xbfs_engine::{
    scrub::scrub_state,
    trace::{RungOutcome, TraceEvent, TraceSink},
    validate, AlwaysTopDown, BfsOutput, FixedMN, LevelRecord, ScrubPolicy, TraversalState,
    XbfsError,
};
use xbfs_graph::{Csr, VertexId};

/// Salt folded into the fault-plan seed for the retry-backoff jitter RNG.
/// Shared with checkpoint capture so a checkpointed `jitter_rng` always
/// means "this stream, at this position".
pub(crate) const JITTER_SALT: u64 = 0x5851_f42d_4c95_7f2d;

/// The cost model's single-thread penalty for the sequential reference
/// rung: one core doing the work of all of them.
pub(crate) fn reference_sequential_penalty(cpu: &ArchSpec) -> f64 {
    cpu.cost.parallel_units.max(1.0)
}

/// Bounded retry with exponential backoff and seeded jitter.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Attempts per operation, including the first (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the first retry, in simulated seconds.
    pub base_backoff_s: f64,
    /// Multiplier applied to the backoff per further retry (≥ 1).
    pub backoff_factor: f64,
    /// Uniform jitter fraction in `[0, 1]`: each backoff is scaled by
    /// `1 + jitter_frac × u` with `u ~ U[0, 1)` from the fault seed.
    pub jitter_frac: f64,
}

impl RetryPolicy {
    /// The runtime default: 3 attempts, 100 µs base backoff, doubling,
    /// 10 % jitter.
    pub fn default_runtime() -> Self {
        Self {
            max_attempts: 3,
            base_backoff_s: 1e-4,
            backoff_factor: 2.0,
            jitter_frac: 0.1,
        }
    }

    /// No retries: every transient fault is immediately permanent.
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            base_backoff_s: 0.0,
            backoff_factor: 1.0,
            jitter_frac: 0.0,
        }
    }

    /// Validate ranges.
    pub fn validate(&self) -> Result<(), XbfsError> {
        if self.max_attempts == 0 {
            return Err(XbfsError::InvalidArgument {
                what: "retry policy needs max_attempts >= 1".into(),
            });
        }
        if !self.base_backoff_s.is_finite() || self.base_backoff_s < 0.0 {
            return Err(XbfsError::InvalidArgument {
                what: format!(
                    "base_backoff_s must be finite and non-negative, got {}",
                    self.base_backoff_s
                ),
            });
        }
        if !self.backoff_factor.is_finite() || self.backoff_factor < 1.0 {
            return Err(XbfsError::InvalidArgument {
                what: format!(
                    "backoff_factor must be finite and >= 1, got {}",
                    self.backoff_factor
                ),
            });
        }
        if !(0.0..=1.0).contains(&self.jitter_frac) {
            return Err(XbfsError::InvalidArgument {
                what: format!("jitter_frac must be in [0, 1], got {}", self.jitter_frac),
            });
        }
        Ok(())
    }

    /// Backoff before retry number `retry` (0-based), with `u ~ U[0, 1)`.
    fn backoff_s(&self, retry: u32, u: f64) -> f64 {
        self.base_backoff_s * self.backoff_factor.powi(retry as i32) * (1.0 + self.jitter_frac * u)
    }
}

/// The full failure-handling configuration of one resilient run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ResilienceConfig {
    /// Per-operation retry policy.
    pub retry: RetryPolicy,
    /// Optional end-to-end simulated deadline budget.
    pub deadline_s: Option<f64>,
    /// Checkpoint cadence and spill target.
    pub checkpoint: CheckpointPolicy,
    /// Circuit-breaker tuning shared by all devices.
    pub breaker: BreakerPolicy,
    /// Per-level invariant scrub cadence ([`ScrubPolicy::Off`] by
    /// default — zero mid-run checks on the fault-free hot path).
    pub scrub: ScrubPolicy,
    /// Verify an integrity checksum on every link transfer. The
    /// receiver's verification pass is charged on the simulated clock
    /// ([`Link::checksum_time`]); a flipped payload fails verification
    /// and is retried like a transient instead of landing silently.
    pub checksum_transfers: bool,
    /// Bounded in-rung repair attempts after a detected corruption
    /// before the rung degrades with
    /// [`XbfsError::CorruptionUnrecovered`].
    pub corruption_repair_limit: u32,
}

impl ResilienceConfig {
    /// Runtime defaults: default retries and breakers, a checkpoint every
    /// 4 levels (in-memory only), no deadline, corruption defense off
    /// (scrub off, unchecksummed transfers) with 2 repair attempts if it
    /// is turned on.
    pub fn default_runtime() -> Self {
        Self {
            retry: RetryPolicy::default_runtime(),
            deadline_s: None,
            checkpoint: CheckpointPolicy::every(4),
            breaker: BreakerPolicy::default_runtime(),
            scrub: ScrubPolicy::Off,
            checksum_transfers: false,
            corruption_repair_limit: 2,
        }
    }

    /// Validate every component.
    pub fn validate(&self) -> Result<(), XbfsError> {
        self.retry.validate()?;
        self.checkpoint.validate()?;
        self.breaker.validate()?;
        self.scrub.validate()?;
        if let Some(d) = self.deadline_s {
            if !d.is_finite() || d <= 0.0 {
                return Err(XbfsError::InvalidArgument {
                    what: format!("deadline must be finite and positive, got {d} s"),
                });
            }
        }
        Ok(())
    }
}

/// One rung of the degradation ladder.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Rung {
    /// The paper's headline `CPUTD+GPUCB` (Algorithm 3).
    CrossCpuGpu,
    /// CPU-only direction-optimizing hybrid with Beamer-default `(M, N)`.
    CpuOnly,
    /// Sequential textbook reference BFS — the last resort.
    Reference,
}

impl Rung {
    /// The simulated devices a rung needs; an open breaker on any of them
    /// skips the rung at selection time.
    pub fn devices(self) -> &'static [Device] {
        match self {
            Rung::CrossCpuGpu => &[Device::Cpu, Device::Gpu, Device::Link],
            Rung::CpuOnly => &[Device::Cpu],
            Rung::Reference => &[],
        }
    }

    /// Stable lowercase label for trace events and metrics keys.
    pub fn label(self) -> &'static str {
        match self {
            Rung::CrossCpuGpu => "cross",
            Rung::CpuOnly => "cpu-only",
            Rung::Reference => "reference",
        }
    }
}

impl std::fmt::Display for Rung {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rung::CrossCpuGpu => write!(f, "CPUTD+GPUCB"),
            Rung::CpuOnly => write!(f, "CPU-only hybrid"),
            Rung::Reference => write!(f, "sequential reference"),
        }
    }
}

/// One resume of a rung from a checkpoint (in-process after a failure, or
/// external via [`resume_cross_resilient`]).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ResumeRecord {
    /// The rung that picked the traversal up.
    pub rung: Rung,
    /// The level it resumed at.
    pub from_level: u32,
    /// `true` if the device-resident frontier was translated to host
    /// (ascending-order) form for a host rung.
    pub translated: bool,
    /// `true` for a cross-process resume from a spilled checkpoint.
    pub external: bool,
}

/// What happened while serving one traversal.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// The rung that produced the validated output.
    pub rung: Rung,
    /// Every rung attempted, in order (ends with `rung`); includes rungs
    /// skipped by an open breaker.
    pub rungs_tried: Vec<Rung>,
    /// The subset of `rungs_tried` skipped at selection time by an open
    /// circuit breaker.
    pub skipped_rungs: Vec<Rung>,
    /// Every fault observed, in injection order.
    pub events: Vec<FaultEvent>,
    /// Operation retries spent across all rungs.
    pub retries: u32,
    /// Simulated seconds lost to faults: wasted attempts, backoff waits,
    /// stall excess, and post-checkpoint time of abandoned rungs.
    pub recovery_seconds: f64,
    /// End-to-end simulated seconds, recovery and checkpointing included.
    pub total_seconds: f64,
    /// Every circuit-breaker state change, in simulated-time order.
    pub breaker_transitions: Vec<BreakerTransition>,
    /// Checkpoints cut during this run.
    pub checkpoints_taken: u32,
    /// Total serialized bytes across those checkpoints.
    pub checkpoint_bytes: u64,
    /// Simulated seconds spent making checkpoints durable (device-state
    /// pullbacks) and re-uploading state on a same-rung resume.
    pub checkpoint_seconds: f64,
    /// For a run started by [`resume_cross_resilient`]: the level it
    /// resumed at.
    pub resumed_from_level: Option<u32>,
    /// Previously-completed levels that had to be re-executed because the
    /// newest checkpoint was older than the failure point (0 when every
    /// failure resumed exactly where it stopped).
    pub levels_replayed: u32,
    /// Levels actually executed by this process (prefix levels restored
    /// from a checkpoint are not re-executed and not counted).
    pub levels_executed: u32,
    /// Edges examined by the levels this process actually executed.
    pub edges_examined: u64,
    /// Estimated simulated seconds saved by resuming from checkpoints
    /// instead of restarting each serving rung from level 0.
    pub saved_seconds: f64,
    /// Every checkpoint resume, in order.
    pub resumes: Vec<ResumeRecord>,
    /// Silent-data-corruption detections across the run: transfer
    /// checksum failures plus invariant-scrub hits.
    pub corruption_detected: u32,
    /// In-rung corruption repairs (rollbacks, restarts, and tainted
    /// checkpoints discarded) the ladder performed.
    pub corruption_repairs: u32,
}

impl RunReport {
    /// Serialize to JSON (for `--report-json` and the chaos corpus).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("RunReport serializes")
    }

    /// Parse from JSON.
    pub fn from_json(s: &str) -> Result<Self, XbfsError> {
        serde_json::from_str(s).map_err(|e| XbfsError::InvalidArgument {
            what: format!("run report parse error: {e:?}"),
        })
    }
}

/// A traversal that survived its fault plan.
#[derive(Clone, Debug)]
pub struct RecoveredRun {
    /// The Graph 500–validated BFS result.
    pub output: BfsOutput,
    /// The audit trail.
    pub report: RunReport,
}

/// The global simulated clock, charging every second against an optional
/// deadline budget.
struct Clock {
    elapsed_s: f64,
    budget_s: Option<f64>,
}

impl Clock {
    fn charge(&mut self, seconds: f64) -> Result<(), XbfsError> {
        self.elapsed_s += seconds;
        match self.budget_s {
            Some(b) if self.elapsed_s > b => Err(XbfsError::DeadlineExceeded {
                budget_s: b,
                elapsed_s: self.elapsed_s,
            }),
            _ => Ok(()),
        }
    }
}

/// Why a rung stopped: a blown deadline aborts the whole ladder, detected
/// corruption triggers an in-rung rollback repair, any other permanent
/// fault degrades to the next rung.
enum RungError {
    Fatal(XbfsError),
    Degrade(XbfsError),
    /// A scrub pass caught corrupted traversal state mid-run; the ladder
    /// repairs in place (bounded) instead of degrading.
    Corrupted {
        level: u32,
        what: String,
    },
}

/// What a fallible operation left behind: clean state, or a silent bit
/// flip the caller must apply to the live traversal (the operation itself
/// reported success — only a later scrub or validation can see it).
enum OpOutcome {
    Clean,
    Corrupted {
        payload: CorruptPayload,
        word: u32,
        bit: u8,
    },
}

/// A rung's starting point: fresh at level 0, or mid-traversal from the
/// newest checkpoint.
struct RungStart {
    state: TraversalState,
    driver: CrossDriver,
    device_discovered: u64,
}

/// Shared per-ladder mutable state threaded through the rungs.
struct Recovery<'a> {
    session: FaultSession<'a>,
    retry: RetryPolicy,
    clock: Clock,
    jitter_rng: u64,
    events: Vec<FaultEvent>,
    retries: u32,
    /// Simulated seconds lost to faults so far.
    lost_s: f64,
    /// Copied out of the plan so `attempt_op` needn't re-borrow it past
    /// the session.
    stall_factor: f64,
    health: DeviceHealth,
    checkpoint: CheckpointPolicy,
    /// The newest trusted checkpoint — the ladder's resume point.
    latest: Option<LevelCheckpoint>,
    checkpoints_taken: u32,
    checkpoint_bytes: u64,
    checkpoint_seconds: f64,
    /// Set only by [`resume_cross_resilient`].
    resumed_from_level: Option<u32>,
    /// `true` until the first `start_for` consumes the external-resume
    /// marker.
    external: bool,
    /// Most levels ever completed by any execution (checkpoint prefix
    /// included).
    furthest_completed: u32,
    levels_replayed: u32,
    levels_executed: u32,
    edges_examined: u64,
    saved_seconds: f64,
    resumes: Vec<ResumeRecord>,
    skipped: Vec<Rung>,
    /// Scrub cadence for mid-run corruption detection.
    scrub: ScrubPolicy,
    /// Whether link transfers are integrity-checksummed at the receiver.
    checksum_transfers: bool,
    /// Bounded in-rung repair attempts per rung after detected corruption.
    corruption_repair_limit: u32,
    /// Corruption detections so far (checksum + scrub).
    corruption_detected: u32,
    /// In-rung corruption repairs performed so far.
    corruption_repairs: u32,
    /// Trace destination; the default [`NULL_SINK`](xbfs_engine::trace::NULL_SINK)
    /// reports itself disabled, so instrumentation sites skip event
    /// construction entirely.
    sink: &'a dyn TraceSink,
}

impl<'a> Recovery<'a> {
    fn new(
        plan: &'a FaultPlan,
        config: &ResilienceConfig,
        lost: &[Device],
        sink: &'a dyn TraceSink,
    ) -> Self {
        // Devices the caller already knows are permanently gone (the query
        // service's shared loss ledger) open their breakers for good at
        // t=0, before the first rung is gated — so a service-wide GPU loss
        // skips the cross rung without this query re-discovering the fault.
        let mut health = DeviceHealth::new(config.breaker, plan.seed);
        for &device in lost {
            health.record_failure(device, 0.0, true);
        }
        Self {
            session: plan.session(),
            retry: config.retry,
            clock: Clock {
                elapsed_s: 0.0,
                budget_s: config.deadline_s,
            },
            jitter_rng: plan.seed ^ JITTER_SALT,
            events: Vec::new(),
            retries: 0,
            lost_s: 0.0,
            stall_factor: plan.stall_factor,
            health,
            checkpoint: config.checkpoint.clone(),
            latest: None,
            checkpoints_taken: 0,
            checkpoint_bytes: 0,
            checkpoint_seconds: 0.0,
            resumed_from_level: None,
            external: false,
            furthest_completed: 0,
            levels_replayed: 0,
            levels_executed: 0,
            edges_examined: 0,
            saved_seconds: 0.0,
            resumes: Vec::new(),
            skipped: Vec::new(),
            scrub: config.scrub,
            checksum_transfers: config.checksum_transfers,
            corruption_repair_limit: config.corruption_repair_limit,
            corruption_detected: 0,
            corruption_repairs: 0,
            sink,
        }
    }

    /// Rebuild the ladder's state from a spilled checkpoint: the clock,
    /// loss ledger, fault-stream position, jitter RNG, and breaker bank
    /// all continue exactly where the checkpointing process stopped.
    fn resume(
        plan: &'a FaultPlan,
        config: &ResilienceConfig,
        ck: &LevelCheckpoint,
        sink: &'a dyn TraceSink,
    ) -> Result<Self, XbfsError> {
        let session = plan.session_at(&ck.fault_cursor)?;
        let mut health = DeviceHealth::new(config.breaker, plan.seed);
        health.restore(&ck.breakers);
        Ok(Self {
            session,
            retry: config.retry,
            clock: Clock {
                elapsed_s: ck.clock_s,
                budget_s: config.deadline_s,
            },
            jitter_rng: ck.jitter_rng,
            events: ck.events.clone(),
            retries: ck.retries,
            lost_s: ck.lost_s,
            stall_factor: plan.stall_factor,
            health,
            checkpoint: config.checkpoint.clone(),
            latest: Some(ck.clone()),
            checkpoints_taken: 0,
            checkpoint_bytes: 0,
            checkpoint_seconds: 0.0,
            resumed_from_level: Some(ck.level()),
            external: true,
            furthest_completed: ck.level(),
            levels_replayed: 0,
            levels_executed: 0,
            edges_examined: 0,
            saved_seconds: 0.0,
            resumes: Vec::new(),
            skipped: Vec::new(),
            scrub: config.scrub,
            checksum_transfers: config.checksum_transfers,
            corruption_repair_limit: config.corruption_repair_limit,
            corruption_detected: 0,
            corruption_repairs: 0,
            sink,
        })
    }

    /// Emit the span for one attempt of a fallible operation: a
    /// [`TraceEvent::Transfer`] for link ops, a [`TraceEvent::Kernel`]
    /// otherwise, ending at the current clock.
    #[allow(clippy::too_many_arguments)] // one flat span, one call site shape
    fn emit_attempt(
        &self,
        op: FaultOp,
        device: Device,
        level: usize,
        attempt: u32,
        bytes: u64,
        start_s: f64,
        ok: bool,
    ) {
        let ev = match op {
            FaultOp::Transfer => TraceEvent::Transfer {
                level: level as u32,
                bytes,
                attempt: attempt - 1,
                start_s,
                end_s: self.clock.elapsed_s,
                ok,
            },
            FaultOp::GpuKernel | FaultOp::CpuKernel => TraceEvent::Kernel {
                device: device.name(),
                op: op.name(),
                level: level as u32,
                attempt: attempt - 1,
                start_s,
                end_s: self.clock.elapsed_s,
                ok,
            },
        };
        self.sink.record(&ev);
    }

    /// Emit the instant for one injected fault.
    fn emit_fault(&self, op: FaultOp, kind: FaultKind, level: usize, attempt: u32) {
        self.sink.record(&TraceEvent::Fault {
            op: op.name(),
            kind: kind.name(),
            level: level as u32,
            attempt: attempt - 1,
            at_s: self.clock.elapsed_s,
        });
    }

    /// Run one fallible operation of nominal duration `nominal_s`,
    /// retrying transients per policy and feeding every outcome to the
    /// device's circuit breaker. `bytes` is the payload size reported on
    /// transfer spans (0 for kernels). An injected bit flip the defenses
    /// could not see returns [`OpOutcome::Corrupted`]: the operation
    /// *succeeded* on the clock and the breaker, but the caller must fold
    /// the flip into its live state.
    #[allow(clippy::too_many_arguments)] // one flat fault surface, three call sites
    fn attempt_op(
        &mut self,
        rung: Rung,
        op: FaultOp,
        level: usize,
        nominal_s: f64,
        device: Device,
        bytes: u64,
    ) -> Result<OpOutcome, RungError> {
        let traced = self.sink.enabled();
        for attempt in 1..=self.retry.max_attempts {
            let start_s = self.clock.elapsed_s;
            match self.session.check(op, level) {
                None => {
                    self.clock.charge(nominal_s).map_err(RungError::Fatal)?;
                    self.health.record_success(device, self.clock.elapsed_s);
                    if traced {
                        self.emit_attempt(op, device, level, attempt, bytes, start_s, true);
                    }
                    return Ok(OpOutcome::Clean);
                }
                Some(FaultKind::BitFlip { payload, word, bit }) => {
                    let kind = FaultKind::BitFlip { payload, word, bit };
                    self.events.push(FaultEvent {
                        op,
                        level,
                        kind,
                        attempt,
                    });
                    if traced {
                        self.emit_fault(op, kind, level, attempt);
                    }
                    if self.checksum_transfers && op == FaultOp::Transfer {
                        // DETECTED: the receiver's checksum rejects the
                        // flipped payload. The attempt's time is wasted
                        // and the transfer retries like a transient.
                        self.corruption_detected += 1;
                        self.lost_s += nominal_s;
                        self.clock.charge(nominal_s).map_err(RungError::Fatal)?;
                        self.health
                            .record_failure(device, self.clock.elapsed_s, false);
                        if traced {
                            self.emit_attempt(op, device, level, attempt, bytes, start_s, false);
                            self.sink.record(&TraceEvent::CorruptionDetected {
                                rung: rung.label(),
                                detector: "checksum",
                                level: level as u32,
                                at_s: self.clock.elapsed_s,
                            });
                        }
                        if attempt == self.retry.max_attempts {
                            return Err(RungError::Degrade(XbfsError::CorruptionDetected {
                                what: format!(
                                    "{} payload failed its integrity checksum ({} bit {} of the {} image)",
                                    op.name(),
                                    word,
                                    bit,
                                    payload.name(),
                                ),
                                level,
                            }));
                        }
                        let u = splitmix_unit(&mut self.jitter_rng);
                        let backoff = self.retry.backoff_s(attempt - 1, u);
                        self.lost_s += backoff;
                        self.retries += 1;
                        let backoff_start = self.clock.elapsed_s;
                        self.clock.charge(backoff).map_err(RungError::Fatal)?;
                        if traced {
                            self.sink.record(&TraceEvent::Backoff {
                                op: op.name(),
                                level: level as u32,
                                retry: attempt - 1,
                                start_s: backoff_start,
                                end_s: self.clock.elapsed_s,
                            });
                        }
                    } else {
                        // SILENT: the operation looks exactly like a
                        // success — full nominal charge, a healthy
                        // breaker sample, an ok span — but the caller's
                        // state is now wrong. Only a scrub or validation
                        // can catch it from here.
                        self.clock.charge(nominal_s).map_err(RungError::Fatal)?;
                        self.health.record_success(device, self.clock.elapsed_s);
                        if traced {
                            self.emit_attempt(op, device, level, attempt, bytes, start_s, true);
                        }
                        return Ok(OpOutcome::Corrupted { payload, word, bit });
                    }
                }
                Some(FaultKind::LinkStall) => {
                    self.events.push(FaultEvent {
                        op,
                        level,
                        kind: FaultKind::LinkStall,
                        attempt,
                    });
                    if traced {
                        self.emit_fault(op, FaultKind::LinkStall, level, attempt);
                    }
                    let stalled = nominal_s * self.stall_factor;
                    self.lost_s += stalled - nominal_s;
                    self.clock.charge(stalled).map_err(RungError::Fatal)?;
                    // Slow but done: a stall is not a breaker failure.
                    self.health.record_success(device, self.clock.elapsed_s);
                    if traced {
                        self.emit_attempt(op, device, level, attempt, bytes, start_s, true);
                    }
                    return Ok(OpOutcome::Clean);
                }
                Some(kind @ (FaultKind::TransferFailure | FaultKind::KernelTimeout)) => {
                    self.events.push(FaultEvent {
                        op,
                        level,
                        kind,
                        attempt,
                    });
                    if traced {
                        self.emit_fault(op, kind, level, attempt);
                    }
                    // The failed attempt's full time is wasted.
                    self.lost_s += nominal_s;
                    self.clock.charge(nominal_s).map_err(RungError::Fatal)?;
                    self.health
                        .record_failure(device, self.clock.elapsed_s, false);
                    if traced {
                        self.emit_attempt(op, device, level, attempt, bytes, start_s, false);
                    }
                    if attempt == self.retry.max_attempts {
                        let e = match kind {
                            FaultKind::TransferFailure => XbfsError::TransferFailed {
                                level,
                                attempts: attempt,
                            },
                            _ => XbfsError::KernelTimeout {
                                device: device.name(),
                                level,
                                attempts: attempt,
                            },
                        };
                        return Err(RungError::Degrade(e));
                    }
                    let u = splitmix_unit(&mut self.jitter_rng);
                    let backoff = self.retry.backoff_s(attempt - 1, u);
                    self.lost_s += backoff;
                    self.retries += 1;
                    let backoff_start = self.clock.elapsed_s;
                    self.clock.charge(backoff).map_err(RungError::Fatal)?;
                    if traced {
                        self.sink.record(&TraceEvent::Backoff {
                            op: op.name(),
                            level: level as u32,
                            retry: attempt - 1,
                            start_s: backoff_start,
                            end_s: self.clock.elapsed_s,
                        });
                    }
                }
                Some(FaultKind::DeviceLost) => {
                    self.events.push(FaultEvent {
                        op,
                        level,
                        kind: FaultKind::DeviceLost,
                        attempt,
                    });
                    if traced {
                        self.emit_fault(op, FaultKind::DeviceLost, level, attempt);
                    }
                    self.health
                        .record_failure(device, self.clock.elapsed_s, true);
                    return Err(RungError::Degrade(XbfsError::DeviceLost {
                        device: device.name(),
                        level,
                    }));
                }
            }
        }
        unreachable!("loop returns on success, exhaustion, or device loss")
    }

    /// Book a completed level into the execution counters and emit its
    /// [`TraceEvent::Level`] span: `start_s` is the clock before the
    /// level's first charge, the span ends at the current clock.
    fn note_level(&mut self, rec: &LevelRecord, rung: Rung, device: &'static str, start_s: f64) {
        self.levels_executed += 1;
        self.edges_examined += rec.edges_examined;
        self.furthest_completed = self.furthest_completed.max(rec.level + 1);
        if self.sink.enabled() {
            self.sink.record(&TraceEvent::Level {
                rung: rung.label(),
                device,
                level: rec.level,
                direction: rec.direction,
                frontier_vertices: rec.frontier_vertices,
                frontier_edges: rec.frontier_edges,
                edges_examined: rec.edges_examined,
                discovered: rec.discovered,
                start_s,
                end_s: self.clock.elapsed_s,
            });
        }
    }

    /// Report every recorded breaker transition to the sink, exactly once
    /// per ladder, at a terminal point — the emitted list is identical to
    /// `RunReport::breaker_transitions` (globally time-sorted), which the
    /// span-tree reconciliation tests rely on.
    fn emit_breakers(&mut self) {
        if !self.sink.enabled() {
            return;
        }
        for tr in self.health.transitions() {
            self.sink.record(&TraceEvent::Breaker {
                device: tr.device.name(),
                from: tr.from.name(),
                to: tr.to.name(),
                cause: tr.cause.name(),
                at_s: tr.at_s,
            });
        }
    }

    /// Cut a checkpoint at the level boundary in front of `st` if one is
    /// due. Device-resident state is drained over the link first (charged
    /// on the clock), so the stored checkpoint is host-durable.
    fn maybe_capture(
        &mut self,
        csr: &Csr,
        rung: Rung,
        st: &TraversalState,
        driver: Option<&CrossDriver>,
        device_discovered: u64,
        link: &Link,
    ) -> Result<(), RungError> {
        if !self.checkpoint.due(st.next_level) || st.is_complete() {
            return Ok(());
        }
        if self
            .latest
            .as_ref()
            .is_some_and(|ck| ck.level() == st.next_level)
        {
            // This boundary is already durable (we just resumed here).
            return Ok(());
        }
        let capture_start_s = self.clock.elapsed_s;
        let handed = driver.is_some_and(|d| d.handed_off());
        let residency = if handed {
            Residency::Device
        } else {
            Residency::Host
        };
        if residency == Residency::Device {
            let t = link.transfer_time(Link::pullback_bytes(
                csr.num_vertices() as u64,
                device_discovered,
                st.frontier.len() as u64,
            ));
            self.checkpoint_seconds += t;
            self.clock.charge(t).map_err(RungError::Fatal)?;
        }
        let ck = LevelCheckpoint {
            format_version: CHECKPOINT_FORMAT_VERSION,
            num_vertices: csr.num_vertices(),
            num_directed_edges: csr.num_directed_edges(),
            rung,
            residency,
            state: st.clone(),
            placements: driver.map(|d| d.placements().to_vec()).unwrap_or_default(),
            handed_off: handed,
            device_discovered,
            clock_s: self.clock.elapsed_s,
            lost_s: self.lost_s,
            retries: self.retries,
            events: self.events.clone(),
            fault_cursor: self.session.cursor(),
            jitter_rng: self.jitter_rng,
            breakers: self.health.snapshot(),
        };
        if ck.validate_for(csr).is_err() {
            // A state that fails its own audit must never become a resume
            // point; keep the previous checkpoint and let end-of-rung
            // validation deal with the corruption.
            return Ok(());
        }
        self.checkpoints_taken += 1;
        let bytes = ck.byte_size();
        self.checkpoint_bytes += bytes;
        let spilled = self.checkpoint.spill.is_some();
        if let Some(path) = self.checkpoint.spill.clone() {
            ck.spill(&path).map_err(RungError::Fatal)?;
        }
        self.latest = Some(ck);
        if self.sink.enabled() {
            self.sink.record(&TraceEvent::Checkpoint {
                rung: rung.label(),
                level: st.next_level,
                bytes,
                spilled,
                start_s: capture_start_s,
                end_s: self.clock.elapsed_s,
            });
        }
        Ok(())
    }

    /// Run the invariant scrubber at the boundary in front of `st` if one
    /// is due. A hit is a detected corruption: the ladder answers with a
    /// rollback repair instead of letting the rung run the corruption to
    /// completion. Scrubbing charges no simulated time — the pass is
    /// memory-bandwidth work the runtime overlaps with the next level's
    /// setup — so enabling it on a fault-free run leaves the clock (and
    /// the whole trace) untouched.
    fn maybe_scrub(&mut self, csr: &Csr, rung: Rung, st: &TraversalState) -> Result<(), RungError> {
        if !self.scrub.due(st.next_level) {
            return Ok(());
        }
        let Some(what) = scrub_state(csr, st) else {
            return Ok(());
        };
        self.corruption_detected += 1;
        if self.sink.enabled() {
            self.sink.record(&TraceEvent::CorruptionDetected {
                rung: rung.label(),
                detector: "scrub",
                level: st.next_level,
                at_s: self.clock.elapsed_s,
            });
        }
        Err(RungError::Corrupted {
            level: st.next_level,
            what,
        })
    }

    /// Where `rung` starts: fresh at level 0, or resumed from the newest
    /// checkpoint (translating representation and charging a re-upload as
    /// needed), with the resume booked into the report counters.
    #[allow(clippy::too_many_arguments)]
    fn start_for(
        &mut self,
        rung: Rung,
        csr: &Csr,
        source: VertexId,
        params: &CrossParams,
        cpu: &ArchSpec,
        gpu: &ArchSpec,
        link: &Link,
    ) -> Result<RungStart, RungError> {
        let external = std::mem::take(&mut self.external);
        let Some(ck) = self.latest.clone() else {
            return Ok(RungStart {
                state: TraversalState::start(csr, source),
                driver: CrossDriver::new(*params),
                device_discovered: 0,
            });
        };
        let from = ck.level();
        let mut state = ck.state.clone();
        let mut translated = false;
        let (driver, device_discovered) = match rung {
            Rung::CrossCpuGpu => {
                // Only reachable from a cross checkpoint: the in-process
                // ladder never climbs back up, and an external resume
                // starts at the checkpoint's own rung.
                if ck.handed_off {
                    // The checkpoint is host-durable; put the frontier and
                    // visited bitmap back on the device before continuing
                    // the GPU phase. Supervised machinery, not a faultable
                    // kernel launch — charged, never injected.
                    let t = link.transfer_time(Link::handoff_bytes(
                        csr.num_vertices() as u64,
                        state.frontier.len() as u64,
                    ));
                    self.checkpoint_seconds += t;
                    self.clock.charge(t).map_err(RungError::Fatal)?;
                }
                (
                    CrossDriver::resume(*params, ck.handed_off, ck.placements.clone()),
                    ck.device_discovered,
                )
            }
            Rung::CpuOnly | Rung::Reference => {
                if ck.residency == Residency::Device {
                    // GPU frontier → host queue: the drain produces
                    // ascending vertex order, exactly what a bitmap yields.
                    state.frontier = ck.host_order_frontier();
                    translated = true;
                }
                (CrossDriver::new(*params), 0)
            }
        };
        // What re-running the restored prefix on this rung would have
        // cost — the resume's saving vs a restart from scratch. For host
        // rungs resuming a cross prefix this is an estimate (the prefix
        // records carry the cross policy's direction choices).
        let saved = match rung {
            Rung::CrossCpuGpu => {
                let mut handed = false;
                let mut s = 0.0;
                for (i, r) in state.levels.iter().enumerate() {
                    let on_gpu = ck.placements.get(i).is_some_and(|p| p.on_gpu());
                    if on_gpu && !handed {
                        handed = true;
                        s += link.transfer_time(Link::handoff_bytes(
                            csr.num_vertices() as u64,
                            r.frontier_vertices,
                        ));
                    }
                    s += cost::level_time_for_record(if on_gpu { gpu } else { cpu }, r);
                }
                s
            }
            Rung::CpuOnly => state
                .levels
                .iter()
                .map(|r| cost::level_time_for_record(cpu, r))
                .sum(),
            Rung::Reference => {
                let penalty = reference_sequential_penalty(cpu);
                state
                    .levels
                    .iter()
                    .map(|r| cost::level_time_for_record(cpu, r) * penalty)
                    .sum()
            }
        };
        self.saved_seconds += saved;
        self.levels_replayed += self.furthest_completed.saturating_sub(from);
        self.resumes.push(ResumeRecord {
            rung,
            from_level: from,
            translated,
            external,
        });
        if self.sink.enabled() {
            self.sink.record(&TraceEvent::Resume {
                rung: rung.label(),
                from_level: from,
                translated,
                external,
                at_s: self.clock.elapsed_s,
            });
        }
        Ok(RungStart {
            state,
            driver,
            device_discovered,
        })
    }
}

/// Everything an execution needs besides its starting point: the graph,
/// the platform, the fault plan, the failure policy, and the trace sink.
/// [`RunSession`](crate::session::RunSession) assembles one of these; the
/// deprecated free functions are thin shims that do the same.
pub(crate) struct ExecArgs<'a> {
    pub csr: &'a Csr,
    pub cpu: &'a ArchSpec,
    pub gpu: &'a ArchSpec,
    pub link: &'a Link,
    pub params: &'a CrossParams,
    pub plan: &'a FaultPlan,
    pub config: &'a ResilienceConfig,
    /// Devices known lost before the run starts (fresh runs only; a
    /// resumed run trusts its checkpoint's breaker bank instead).
    pub lost: &'a [Device],
    pub sink: &'a dyn TraceSink,
    /// Optional online per-level policy; `None` (and passthrough cells)
    /// take the plain offline path, byte-identical to the pre-policy code.
    pub policy: Option<&'a crate::policy_online::PolicyCell>,
}

/// Start the full degradation ladder fresh from `source`.
pub(crate) fn execute_fresh(
    args: &ExecArgs<'_>,
    source: VertexId,
) -> Result<RecoveredRun, XbfsError> {
    args.params.validate()?;
    args.plan.validate()?;
    args.config.validate()?;
    if source >= args.csr.num_vertices() {
        return Err(XbfsError::BadSource {
            source,
            num_vertices: args.csr.num_vertices(),
        });
    }
    let rec = Recovery::new(args.plan, args.config, args.lost, args.sink);
    ladder(
        args,
        source,
        rec,
        &[Rung::CrossCpuGpu, Rung::CpuOnly, Rung::Reference],
    )
}

/// Resume the ladder from `checkpoint`, starting at its rung.
pub(crate) fn execute_resume(
    args: &ExecArgs<'_>,
    checkpoint: &LevelCheckpoint,
) -> Result<RecoveredRun, XbfsError> {
    args.params.validate()?;
    args.plan.validate()?;
    args.config.validate()?;
    checkpoint.validate_for(args.csr)?;
    let source = checkpoint.state.output.source;
    let rec = Recovery::resume(args.plan, args.config, checkpoint, args.sink)?;
    let rungs: &[Rung] = match checkpoint.rung {
        Rung::CrossCpuGpu => &[Rung::CrossCpuGpu, Rung::CpuOnly, Rung::Reference],
        Rung::CpuOnly => &[Rung::CpuOnly, Rung::Reference],
        Rung::Reference => &[Rung::Reference],
    };
    ladder(args, source, rec, rungs)
}

/// Run the cross-architecture combination under a fault plan, degrading
/// down the ladder as devices fail. PR 1 compatibility entry point:
/// checkpointing disabled, default breakers.
///
/// Returns a validated [`RecoveredRun`] or a typed error ­— the only
/// errors that escape are argument validation, [`XbfsError::DeadlineExceeded`],
/// and (if even the reference rung cannot produce a valid tree)
/// [`XbfsError::Validation`] / the last rung's fault.
#[deprecated(
    note = "use `RunSession::on_platform(..).source(..).fault_plan(..).resilience(..).run()` instead"
)]
#[allow(clippy::too_many_arguments)] // the runtime's full failure surface
pub fn run_cross_resilient(
    csr: &Csr,
    source: VertexId,
    cpu: &ArchSpec,
    gpu: &ArchSpec,
    link: &Link,
    params: &CrossParams,
    plan: &FaultPlan,
    retry: &RetryPolicy,
    deadline_s: Option<f64>,
) -> Result<RecoveredRun, XbfsError> {
    let config = ResilienceConfig {
        retry: *retry,
        deadline_s,
        checkpoint: CheckpointPolicy::disabled(),
        ..ResilienceConfig::default_runtime()
    };
    crate::session::RunSession::on_platform(csr, cpu, gpu, link, params)
        .source(source)
        .fault_plan(plan)
        .resilience(config)
        .run()
}

/// [`run_cross_resilient`] with the full [`ResilienceConfig`] surface:
/// level-granular checkpoints (optionally spilled to disk) and per-device
/// circuit breakers on top of retries and the deadline budget.
#[deprecated(
    note = "use `RunSession::on_platform(..).source(..).fault_plan(..).resilience(..).run()` instead"
)]
#[allow(clippy::too_many_arguments)] // the runtime's full failure surface
pub fn run_cross_resilient_with(
    csr: &Csr,
    source: VertexId,
    cpu: &ArchSpec,
    gpu: &ArchSpec,
    link: &Link,
    params: &CrossParams,
    plan: &FaultPlan,
    config: &ResilienceConfig,
) -> Result<RecoveredRun, XbfsError> {
    crate::session::RunSession::on_platform(csr, cpu, gpu, link, params)
        .source(source)
        .fault_plan(plan)
        .resilience(config.clone())
        .run()
}

/// Resume a traversal from a [`LevelCheckpoint`] — same process or a
/// fresh one (via [`LevelCheckpoint::load`]). The ladder starts at the
/// checkpoint's rung and may degrade further; the clock, loss ledger,
/// fault stream, jitter RNG, and breaker bank all continue exactly where
/// the checkpointing run stopped, so a resumed run is indistinguishable
/// from one that never died.
#[deprecated(
    note = "use `RunSession::on_platform(..).fault_plan(..).resilience(..).resume(ck)` instead"
)]
#[allow(clippy::too_many_arguments)] // the runtime's full failure surface
pub fn resume_cross_resilient(
    csr: &Csr,
    cpu: &ArchSpec,
    gpu: &ArchSpec,
    link: &Link,
    params: &CrossParams,
    plan: &FaultPlan,
    config: &ResilienceConfig,
    checkpoint: &LevelCheckpoint,
) -> Result<RecoveredRun, XbfsError> {
    crate::session::RunSession::on_platform(csr, cpu, gpu, link, params)
        .fault_plan(plan)
        .resilience(config.clone())
        .resume(checkpoint)
}

/// The degradation ladder shared by fresh and resumed entries.
fn ladder(
    args: &ExecArgs<'_>,
    source: VertexId,
    mut rec: Recovery<'_>,
    rungs: &[Rung],
) -> Result<RecoveredRun, XbfsError> {
    let csr = args.csr;
    let mut rungs_tried = Vec::new();
    let mut last_error: Option<XbfsError> = None;

    for &rung in rungs {
        rungs_tried.push(rung);
        // Rung-selection gate: a sick device is skipped here instead of
        // rediscovered through a full retry budget.
        if let Some((device, _state)) = rec.health.first_denial(rung.devices(), rec.clock.elapsed_s)
        {
            rec.skipped.push(rung);
            if rec.sink.enabled() {
                rec.sink.record(&TraceEvent::RungSkipped {
                    rung: rung.label(),
                    device: device.name(),
                    at_s: rec.clock.elapsed_s,
                });
            }
            last_error = Some(XbfsError::CircuitOpen {
                device: device.name(),
            });
            continue;
        }
        if rec.sink.enabled() {
            rec.sink.record(&TraceEvent::RungBegin {
                rung: rung.label(),
                at_s: rec.clock.elapsed_s,
            });
        }
        let rung_start_latest = rec.latest.clone();
        let retained_at_start = retained_productive(&rec.latest);
        // Detected-corruption repair loop: a scrub hit rewinds this rung
        // to its last *trusted* checkpoint and re-executes, a bounded
        // number of times, before the rung is allowed to give up.
        let mut repair_attempts: u32 = 0;
        let outcome = loop {
            let result = match rung {
                Rung::CrossCpuGpu => run_rung_cross(args, source, &mut rec),
                Rung::CpuOnly => run_rung_cpu_only(args, source, &mut rec),
                Rung::Reference => run_rung_reference(args, source, &mut rec),
            };
            let Err(RungError::Corrupted { level, what }) = result else {
                break result;
            };
            repair_attempts += 1;
            if repair_attempts > rec.corruption_repair_limit {
                break Err(RungError::Degrade(XbfsError::CorruptionUnrecovered {
                    level: level as usize,
                    attempts: repair_attempts - 1,
                    what,
                }));
            }
            // Pick the repair point. The newest checkpoint is re-audited
            // before it is trusted: if the corruption predates its
            // capture, it is tainted — discard it and fall back to the
            // rung-start checkpoint (or a from-scratch restart).
            let action = match rec.latest.as_ref() {
                Some(ck) if ck.validate_for(csr).is_err() => {
                    rec.latest = rung_start_latest.clone();
                    "taint"
                }
                Some(_) => "rollback",
                None => "restart",
            };
            let to_level = rec.latest.as_ref().map_or(0, |ck| ck.level());
            // Everything after the trusted checkpoint is forfeit.
            let retained = retained_productive(&rec.latest);
            let productive_now = rec.clock.elapsed_s - rec.lost_s;
            rec.lost_s += (productive_now - retained).max(0.0);
            rec.corruption_repairs += 1;
            if rec.sink.enabled() {
                rec.sink.record(&TraceEvent::CorruptionRepair {
                    rung: rung.label(),
                    action,
                    to_level,
                    attempt: repair_attempts,
                    at_s: rec.clock.elapsed_s,
                });
            }
            // Re-run the same rung from the repair point. The fault
            // session keeps its forward position: fired one-shots do not
            // re-fire, so the repaired pass re-executes clean unless the
            // plan schedules further corruption.
        };
        let emit_rung_end = |rec: &Recovery<'_>, outcome: RungOutcome| {
            if rec.sink.enabled() {
                rec.sink.record(&TraceEvent::RungEnd {
                    rung: rung.label(),
                    at_s: rec.clock.elapsed_s,
                    outcome,
                });
            }
        };
        match outcome {
            Ok(output) => match validate(csr, &output) {
                Ok(()) => {
                    emit_rung_end(&rec, RungOutcome::Served);
                    rec.emit_breakers();
                    let report = RunReport {
                        rung,
                        rungs_tried,
                        skipped_rungs: rec.skipped,
                        events: rec.events,
                        retries: rec.retries,
                        recovery_seconds: rec.lost_s,
                        total_seconds: rec.clock.elapsed_s,
                        breaker_transitions: rec.health.transitions(),
                        checkpoints_taken: rec.checkpoints_taken,
                        checkpoint_bytes: rec.checkpoint_bytes,
                        checkpoint_seconds: rec.checkpoint_seconds,
                        resumed_from_level: rec.resumed_from_level,
                        levels_replayed: rec.levels_replayed,
                        levels_executed: rec.levels_executed,
                        edges_examined: rec.edges_examined,
                        saved_seconds: rec.saved_seconds,
                        resumes: rec.resumes,
                        corruption_detected: rec.corruption_detected,
                        corruption_repairs: rec.corruption_repairs,
                    };
                    return Ok(RecoveredRun { output, report });
                }
                Err(v) => {
                    emit_rung_end(&rec, RungOutcome::Invalid);
                    // A rung that emits a corrupt tree is a faulty rung.
                    // Checkpoints it cut are tainted too: roll back to the
                    // rung-start checkpoint and convert everything after
                    // it to loss.
                    let productive_now = rec.clock.elapsed_s - rec.lost_s;
                    rec.lost_s += (productive_now - retained_at_start).max(0.0);
                    rec.latest = rung_start_latest;
                    last_error = Some(XbfsError::Validation(v));
                }
            },
            Err(RungError::Fatal(e)) => {
                emit_rung_end(&rec, RungOutcome::Fatal);
                rec.emit_breakers();
                return Err(e);
            }
            Err(RungError::Degrade(e)) => {
                emit_rung_end(&rec, RungOutcome::Degraded);
                // Time since the newest checkpoint is gone; everything up
                // to it survives for the next rung to resume from.
                let retained = retained_productive(&rec.latest);
                let productive_now = rec.clock.elapsed_s - rec.lost_s;
                rec.lost_s += (productive_now - retained).max(0.0);
                last_error = Some(e);
            }
            Err(RungError::Corrupted { .. }) => {
                unreachable!("detected corruption is repaired or converted inside the rung loop")
            }
        }
    }
    rec.emit_breakers();
    Err(last_error.expect("ladder only exits the loop after a rung failure"))
}

/// The productive simulated seconds preserved by the newest checkpoint —
/// what a rung failure does *not* forfeit.
fn retained_productive(latest: &Option<LevelCheckpoint>) -> f64 {
    latest.as_ref().map_or(0.0, |ck| ck.clock_s - ck.lost_s)
}

/// Fold one silently injected bit flip into the live traversal state —
/// the simulated effect of corrupted data landing from an operation that
/// reported success. `Parents` flips one bit of one parent-map word;
/// `Bitmap` toggles one frontier-membership bit (adding a ghost vertex or
/// erasing a real one). Indexes wrap modulo the state size so any plan is
/// applicable to any graph.
fn apply_bit_flip(state: &mut TraversalState, payload: CorruptPayload, word: u32, bit: u8) {
    let n = state.output.parents.len();
    if n == 0 {
        return;
    }
    match payload {
        CorruptPayload::Parents => {
            state.output.parents[word as usize % n] ^= 1u32 << (bit % 32);
        }
        CorruptPayload::Bitmap => {
            let v = ((word as usize) * 32 + (bit as usize) % 32) % n;
            let v = v as VertexId;
            match state.frontier.iter().position(|&f| f == v) {
                Some(i) => {
                    state.frontier.remove(i);
                }
                None => state.frontier.push(v),
            }
        }
    }
}

/// Rung 1: Algorithm 3 with fault checks on the handoff transfer and every
/// kernel launch, stepping level-by-level so checkpoints can be cut at
/// boundaries.
fn run_rung_cross(
    args: &ExecArgs<'_>,
    source: VertexId,
    rec: &mut Recovery<'_>,
) -> Result<BfsOutput, RungError> {
    let (csr, cpu, gpu, link, params) = (args.csr, args.cpu, args.gpu, args.link, args.params);
    if rec.session.gpu_lost() {
        return Err(RungError::Degrade(XbfsError::DeviceLost {
            device: "gpu",
            level: 0,
        }));
    }
    let RungStart {
        mut state,
        mut driver,
        mut device_discovered,
    } = rec.start_for(Rung::CrossCpuGpu, csr, source, params, cpu, gpu, link)?;
    let n = csr.num_vertices() as u64;
    // A passthrough cell (frozen, never updated) can only ever pick the
    // offline arm, so it takes the exact pre-policy code path: no feature
    // folds, no PolicyDecision events, bit-identical output and trace.
    let policy = args.policy.filter(|cell| !cell.borrow().is_passthrough());
    loop {
        // Scrub before the capture gate: a corrupt state must be caught
        // here, never frozen into a resume point.
        rec.maybe_scrub(csr, Rung::CrossCpuGpu, &state)?;
        rec.maybe_capture(
            csr,
            Rung::CrossCpuGpu,
            &state,
            Some(&driver),
            device_discovered,
            link,
        )?;
        let level_start_s = rec.clock.elapsed_s;
        let was_handed = driver.handed_off();
        let decision = match policy {
            Some(cell) if !state.frontier.is_empty() => {
                let ctx = crate::policy_online::switch_context_for(csr, &state);
                let offline = driver.offline_placement(&ctx);
                Some(cell.borrow().decide(&ctx, was_handed, offline))
            }
            _ => None,
        };
        let stepped = match decision {
            Some(d) => driver.step_forced(csr, &mut state, d.placement),
            None => driver.step(csr, &mut state),
        };
        let Some(pl) = stepped else {
            break;
        };
        let lvl = *state.levels.last().expect("step pushed a record");
        if let Some(d) = decision {
            if rec.sink.enabled() {
                rec.sink.record(&TraceEvent::PolicyDecision {
                    level: lvl.level,
                    bin: d.bin,
                    device: pl.device(),
                    direction: pl.direction(),
                    explore: d.explore,
                    at_s: level_start_s,
                });
            }
        }
        // The policy's reward: the level's kernel time plus the handoff
        // transfer when this decision fired it.
        let mut observed_s = 0.0;
        if pl.on_gpu() && !was_handed {
            let bytes = Link::handoff_bytes(n, lvl.frontier_vertices);
            let mut t = link.transfer_time(bytes);
            if rec.checksum_transfers {
                t += link.checksum_time(bytes);
            }
            observed_s += t;
            if let OpOutcome::Corrupted { payload, word, bit } = rec.attempt_op(
                Rung::CrossCpuGpu,
                FaultOp::Transfer,
                lvl.level as usize,
                t,
                Device::Link,
                bytes,
            )? {
                apply_bit_flip(&mut state, payload, word, bit);
            }
        }
        let (op, device, arch, device_label) = if pl.on_gpu() {
            (FaultOp::GpuKernel, Device::Gpu, gpu, "gpu")
        } else {
            (FaultOp::CpuKernel, Device::Cpu, cpu, "cpu")
        };
        let nominal = cost::level_time_for_record_traced(
            arch,
            &lvl,
            device_label,
            rec.clock.elapsed_s,
            rec.sink,
        );
        if let OpOutcome::Corrupted { payload, word, bit } = rec.attempt_op(
            Rung::CrossCpuGpu,
            op,
            lvl.level as usize,
            nominal,
            device,
            0,
        )? {
            apply_bit_flip(&mut state, payload, word, bit);
        }
        observed_s += nominal;
        if let (Some(cell), Some(d)) = (policy, decision) {
            cell.borrow_mut().observe(d.bin, pl, observed_s);
        }
        rec.note_level(&lvl, Rung::CrossCpuGpu, device_label, level_start_s);
        if pl.on_gpu() {
            device_discovered += lvl.discovered;
        }
    }
    Ok(state.into_traversal().output)
}

/// Rung 2: CPU-only direction-optimizing hybrid at Beamer-default
/// thresholds, with fault checks on every level kernel.
fn run_rung_cpu_only(
    args: &ExecArgs<'_>,
    source: VertexId,
    rec: &mut Recovery<'_>,
) -> Result<BfsOutput, RungError> {
    let (csr, cpu, gpu, link, params) = (args.csr, args.cpu, args.gpu, args.link, args.params);
    if rec.session.cpu_lost() {
        return Err(RungError::Degrade(XbfsError::DeviceLost {
            device: "cpu",
            level: 0,
        }));
    }
    let RungStart { mut state, .. } =
        rec.start_for(Rung::CpuOnly, csr, source, params, cpu, gpu, link)?;
    let mut mn = FixedMN::new(14.0, 24.0);
    loop {
        rec.maybe_scrub(csr, Rung::CpuOnly, &state)?;
        rec.maybe_capture(csr, Rung::CpuOnly, &state, None, 0, link)?;
        let level_start_s = rec.clock.elapsed_s;
        if state.step(csr, &mut mn).is_none() {
            break;
        }
        let lvl = *state.levels.last().expect("step pushed a record");
        let nominal =
            cost::level_time_for_record_traced(cpu, &lvl, "cpu", rec.clock.elapsed_s, rec.sink);
        if let OpOutcome::Corrupted { payload, word, bit } = rec.attempt_op(
            Rung::CpuOnly,
            FaultOp::CpuKernel,
            lvl.level as usize,
            nominal,
            Device::Cpu,
            0,
        )? {
            apply_bit_flip(&mut state, payload, word, bit);
        }
        rec.note_level(&lvl, Rung::CpuOnly, "cpu", level_start_s);
    }
    Ok(state.into_traversal().output)
}

/// Rung 3: sequential reference BFS — assumed fault-free (no accelerator,
/// no parallel kernels) but still on the simulated clock: each level is
/// charged the CPU's top-down cost scaled up by its core count, the cost
/// model's view of single-threaded execution.
fn run_rung_reference(
    args: &ExecArgs<'_>,
    source: VertexId,
    rec: &mut Recovery<'_>,
) -> Result<BfsOutput, RungError> {
    let (csr, cpu, gpu, link, params) = (args.csr, args.cpu, args.gpu, args.link, args.params);
    let RungStart { mut state, .. } =
        rec.start_for(Rung::Reference, csr, source, params, cpu, gpu, link)?;
    let mut td = AlwaysTopDown;
    let penalty = reference_sequential_penalty(cpu);
    loop {
        rec.maybe_scrub(csr, Rung::Reference, &state)?;
        rec.maybe_capture(csr, Rung::Reference, &state, None, 0, link)?;
        let level_start_s = rec.clock.elapsed_s;
        if state.step(csr, &mut td).is_none() {
            break;
        }
        let lvl = *state.levels.last().expect("step pushed a record");
        let charge = cost::level_time_for_record(cpu, &lvl) * penalty;
        if rec.sink.enabled() {
            // The reference rung bypasses `attempt_op` (it is fault-free
            // by construction), so its kernel span and cost decomposition
            // are emitted here. The charged value stays `charge`, exactly.
            let parts = cost::level_cost_parts_for_record(cpu, &lvl);
            rec.sink.record(&TraceEvent::KernelCost {
                device: "cpu",
                level: lvl.level,
                direction: lvl.direction,
                total_s: charge,
                overhead_s: parts.overhead_s * penalty,
                work_s: parts.work_s * penalty,
                bound: "reference-serial",
                at_s: rec.clock.elapsed_s,
            });
        }
        rec.clock.charge(charge).map_err(RungError::Fatal)?;
        if rec.sink.enabled() {
            rec.sink.record(&TraceEvent::Kernel {
                device: "cpu",
                op: "cpu-kernel",
                level: lvl.level,
                attempt: 0,
                start_s: level_start_s,
                end_s: rec.clock.elapsed_s,
                ok: true,
            });
        }
        rec.note_level(&lvl, Rung::Reference, "cpu", level_start_s);
    }
    Ok(state.into_traversal().output)
}

#[cfg(test)]
#[allow(deprecated)] // the legacy shims are exercised on purpose here
mod tests {
    use super::*;
    use xbfs_archsim::fault::ScheduledFault;

    fn setup() -> (Csr, u32, ArchSpec, ArchSpec, Link, CrossParams) {
        let g = xbfs_graph::rmat::rmat_csr(10, 16);
        let src = crate::training::pick_source(&g, 3).unwrap();
        (
            g,
            src,
            ArchSpec::cpu_sandy_bridge(),
            ArchSpec::gpu_k20x(),
            Link::pcie3(),
            CrossParams {
                handoff: FixedMN::new(64.0, 64.0),
                gpu: FixedMN::new(14.0, 24.0),
            },
        )
    }

    #[test]
    fn healthy_plan_stays_on_the_top_rung() {
        let (g, src, cpu, gpu, link, params) = setup();
        let plan = FaultPlan::none();
        let run = run_cross_resilient(
            &g,
            src,
            &cpu,
            &gpu,
            &link,
            &params,
            &plan,
            &RetryPolicy::default_runtime(),
            None,
        )
        .expect("healthy run succeeds");
        assert_eq!(run.report.rung, Rung::CrossCpuGpu);
        assert_eq!(run.report.rungs_tried, vec![Rung::CrossCpuGpu]);
        assert!(run.report.events.is_empty());
        assert_eq!(run.report.retries, 0);
        assert_eq!(run.report.recovery_seconds, 0.0);
        assert!(run.report.total_seconds > 0.0);
        // Legacy entry: checkpointing off, nothing skipped, no breaker
        // activity.
        assert_eq!(run.report.checkpoints_taken, 0);
        assert!(run.report.skipped_rungs.is_empty());
        assert!(run.report.breaker_transitions.is_empty());
        assert!(run.report.resumes.is_empty());
        assert_eq!(run.report.resumed_from_level, None);
    }

    #[test]
    fn retry_policy_rejects_bad_ranges() {
        let mut r = RetryPolicy::default_runtime();
        r.max_attempts = 0;
        assert!(r.validate().is_err());
        let mut r = RetryPolicy::default_runtime();
        r.backoff_factor = 0.5;
        assert!(r.validate().is_err());
        let mut r = RetryPolicy::default_runtime();
        r.jitter_frac = 2.0;
        assert!(r.validate().is_err());
        assert!(RetryPolicy::default_runtime().validate().is_ok());
        assert!(RetryPolicy::none().validate().is_ok());
    }

    #[test]
    fn resilience_config_validates_components() {
        assert!(ResilienceConfig::default_runtime().validate().is_ok());
        let mut c = ResilienceConfig::default_runtime();
        c.retry.max_attempts = 0;
        assert!(c.validate().is_err());
        let mut c = ResilienceConfig::default_runtime();
        c.checkpoint = CheckpointPolicy {
            interval_levels: 0,
            spill: Some("/tmp/x.json".into()),
        };
        assert!(c.validate().is_err());
        let mut c = ResilienceConfig::default_runtime();
        c.breaker.failure_threshold = 0;
        assert!(c.validate().is_err());
        let mut c = ResilienceConfig::default_runtime();
        c.deadline_s = Some(-1.0);
        assert!(c.validate().is_err());
    }

    #[test]
    fn cpu_device_loss_reaches_the_reference_rung() {
        let (g, src, cpu, gpu, link, params) = setup();
        // Kill the CPU at its very first kernel: rung 1 dies at level 0,
        // rung 2 is skipped (CPU breaker is permanently open), the
        // reference rung serves.
        let plan = FaultPlan {
            scheduled: vec![ScheduledFault {
                op: FaultOp::CpuKernel,
                level: 0,
                kind: FaultKind::DeviceLost,
            }],
            ..FaultPlan::none()
        };
        let run = run_cross_resilient(
            &g,
            src,
            &cpu,
            &gpu,
            &link,
            &params,
            &plan,
            &RetryPolicy::default_runtime(),
            None,
        )
        .expect("reference rung still serves");
        assert_eq!(run.report.rung, Rung::Reference);
        assert_eq!(
            run.report.rungs_tried,
            vec![Rung::CrossCpuGpu, Rung::CpuOnly, Rung::Reference]
        );
        assert_eq!(validate(&g, &run.output), Ok(()));
        // The breaker, not a wasted execution, vetoed the CPU-only rung.
        assert_eq!(run.report.skipped_rungs, vec![Rung::CpuOnly]);
        assert!(run
            .report
            .breaker_transitions
            .iter()
            .any(|t| t.device == Device::Cpu
                && t.cause == crate::health::TransitionCause::DeviceLost));
    }

    #[test]
    fn deadline_zero_budget_is_rejected_as_argument() {
        let (g, src, cpu, gpu, link, params) = setup();
        let err = run_cross_resilient(
            &g,
            src,
            &cpu,
            &gpu,
            &link,
            &params,
            &FaultPlan::none(),
            &RetryPolicy::default_runtime(),
            Some(0.0),
        )
        .unwrap_err();
        assert!(matches!(err, XbfsError::InvalidArgument { .. }));
    }

    #[test]
    fn bad_source_is_a_typed_error() {
        let (g, _, cpu, gpu, link, params) = setup();
        let err = run_cross_resilient(
            &g,
            g.num_vertices() + 7,
            &cpu,
            &gpu,
            &link,
            &params,
            &FaultPlan::none(),
            &RetryPolicy::default_runtime(),
            None,
        )
        .unwrap_err();
        assert!(matches!(err, XbfsError::BadSource { .. }));
    }

    #[test]
    fn checkpointing_off_matches_pr1_clock_exactly() {
        // The `_with` entry with checkpointing disabled must be
        // numerically identical to the legacy entry.
        let (g, src, cpu, gpu, link, params) = setup();
        let plan = FaultPlan {
            p_transfer_failure: 0.3,
            p_kernel_timeout: 0.2,
            ..FaultPlan::none()
        };
        let legacy = run_cross_resilient(
            &g,
            src,
            &cpu,
            &gpu,
            &link,
            &params,
            &plan,
            &RetryPolicy::default_runtime(),
            None,
        )
        .expect("legacy");
        let config = ResilienceConfig {
            checkpoint: CheckpointPolicy::disabled(),
            ..ResilienceConfig::default_runtime()
        };
        let with = run_cross_resilient_with(&g, src, &cpu, &gpu, &link, &params, &plan, &config)
            .expect("with");
        assert_eq!(legacy.output, with.output);
        assert_eq!(legacy.report.total_seconds, with.report.total_seconds);
        assert_eq!(legacy.report.events, with.report.events);
        assert_eq!(legacy.report.recovery_seconds, with.report.recovery_seconds);
    }

    #[test]
    fn gpu_loss_after_checkpoint_resumes_cpu_rung_mid_traversal() {
        let (g, src, cpu, gpu, link, params) = setup();
        // Lose the GPU at its first operation (the handoff transfer). With
        // a checkpoint cut every level, the CPU-only rung resumes from the
        // last boundary instead of restarting at level 0.
        let plan = FaultPlan {
            p_device_lost: 1.0,
            ..FaultPlan::none()
        };
        let config = ResilienceConfig {
            checkpoint: CheckpointPolicy::every(1),
            ..ResilienceConfig::default_runtime()
        };
        let run = run_cross_resilient_with(&g, src, &cpu, &gpu, &link, &params, &plan, &config)
            .expect("cpu rung serves");
        assert_eq!(run.report.rung, Rung::CpuOnly);
        assert_eq!(validate(&g, &run.output), Ok(()));
        assert!(run.report.checkpoints_taken > 0);
        assert!(run.report.checkpoint_bytes > 0);
        let resume = run
            .report
            .resumes
            .iter()
            .find(|r| r.rung == Rung::CpuOnly)
            .expect("cpu rung resumed from checkpoint");
        assert!(resume.from_level > 0);
        assert!(!resume.external);
        assert!(run.report.saved_seconds > 0.0);
        // The levels the CPU rung skipped were the checkpointed prefix.
        let total_levels = run
            .output
            .levels
            .iter()
            .filter(|&&l| l != xbfs_engine::UNREACHED)
            .max()
            .copied()
            .unwrap()
            + 1;
        assert!(run.report.levels_executed < 2 * total_levels);
    }

    #[test]
    fn spilled_checkpoint_resumes_in_a_fresh_ladder() {
        let (g, src, cpu, gpu, link, params) = setup();
        let dir = std::env::temp_dir().join("xbfs-recovery-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("resume.json");
        let path_s = path.to_str().unwrap().to_string();
        // Healthy run that spills a checkpoint each boundary, then resume
        // the final spill externally: the resumed run must reproduce the
        // same tree and the same final clock.
        let config = ResilienceConfig {
            checkpoint: CheckpointPolicy {
                interval_levels: 2,
                spill: Some(path_s.clone()),
            },
            ..ResilienceConfig::default_runtime()
        };
        let plan = FaultPlan::none();
        let full = run_cross_resilient_with(&g, src, &cpu, &gpu, &link, &params, &plan, &config)
            .expect("healthy spilling run");
        let ck = LevelCheckpoint::load(&path_s).expect("spill exists");
        assert!(ck.level() >= 2);
        let resumed = resume_cross_resilient(&g, &cpu, &gpu, &link, &params, &plan, &config, &ck)
            .expect("resume");
        assert_eq!(resumed.output, full.output);
        assert_eq!(resumed.report.rung, full.report.rung);
        assert_eq!(resumed.report.resumed_from_level, Some(ck.level()));
        assert!(resumed.report.resumes[0].external);
        // The resumed process only executed the suffix.
        assert!(resumed.report.levels_executed < full.report.levels_executed);
        let _ = std::fs::remove_file(&path);
    }

    /// Drive the ladder with an explicit rung list and trace sink — the
    /// corruption tests pin the traversal to one rung so a scheduled flip
    /// lands deterministically.
    fn run_ladder(
        g: &Csr,
        src: u32,
        plan: &FaultPlan,
        config: &ResilienceConfig,
        rungs: &[Rung],
        sink: &dyn TraceSink,
    ) -> Result<RecoveredRun, XbfsError> {
        let cpu = ArchSpec::cpu_sandy_bridge();
        let gpu = ArchSpec::gpu_k20x();
        let link = Link::pcie3();
        let params = CrossParams {
            handoff: FixedMN::new(64.0, 64.0),
            gpu: FixedMN::new(14.0, 24.0),
        };
        let args = ExecArgs {
            csr: g,
            cpu: &cpu,
            gpu: &gpu,
            link: &link,
            params: &params,
            plan,
            config,
            lost: &[],
            sink,
            policy: None,
        };
        let rec = Recovery::new(plan, config, &[], sink);
        ladder(&args, src, rec, rungs)
    }

    /// A parent-map flip with bit 31 set always breaks the tree: a visited
    /// vertex's parent jumps out of range, an unvisited one gains a parent
    /// with no level. Either way the scrub invariants catch it.
    fn parent_flip_at(level: usize) -> ScheduledFault {
        ScheduledFault {
            op: FaultOp::CpuKernel,
            level,
            kind: FaultKind::BitFlip {
                payload: CorruptPayload::Parents,
                word: 1,
                bit: 31,
            },
        }
    }

    #[test]
    fn silent_flip_with_scrub_off_never_serves_a_wrong_tree() {
        let (g, src, cpu, gpu, link, params) = setup();
        // No scrubbing, no checksums: the flip lands silently at level 0
        // of the cross rung and the end-of-run validation gate is the only
        // defense left. The ladder must reject the corrupt tree and serve
        // from a lower rung — never return the wrong answer.
        let plan = FaultPlan {
            scheduled: vec![parent_flip_at(0)],
            ..FaultPlan::none()
        };
        let config = ResilienceConfig::default_runtime();
        let run = run_cross_resilient_with(&g, src, &cpu, &gpu, &link, &params, &plan, &config)
            .expect("a lower rung serves a clean tree");
        assert_eq!(validate(&g, &run.output), Ok(()));
        assert_ne!(run.report.rung, Rung::CrossCpuGpu);
        assert_eq!(run.report.events.len(), 1);
        // Nothing detected the flip mid-run — only the validation gate.
        assert_eq!(run.report.corruption_detected, 0);
        assert_eq!(run.report.corruption_repairs, 0);
    }

    #[test]
    fn scrub_detects_a_flip_and_rolls_back_to_the_last_checkpoint() {
        let (g, src, ..) = setup();
        // Flip at level 3 with a checkpoint boundary at 2: the level-4
        // scrub pass catches the corruption and the repair rolls back to
        // level 2 instead of restarting, all within the same rung.
        let plan = FaultPlan {
            scheduled: vec![parent_flip_at(3)],
            ..FaultPlan::none()
        };
        let config = ResilienceConfig {
            checkpoint: CheckpointPolicy::every(2),
            scrub: ScrubPolicy::every_level(),
            ..ResilienceConfig::default_runtime()
        };
        let sink = xbfs_engine::trace::MemorySink::new();
        let run = run_ladder(&g, src, &plan, &config, &[Rung::CpuOnly], &sink)
            .expect("the rung repairs itself and serves");
        assert_eq!(run.report.rung, Rung::CpuOnly);
        assert_eq!(validate(&g, &run.output), Ok(()));
        assert_eq!(run.report.corruption_detected, 1);
        assert_eq!(run.report.corruption_repairs, 1);
        // The repair resumed from the level-2 checkpoint, not level 0.
        assert!(
            run.report.resumes.iter().any(|r| r.from_level == 2),
            "resumes: {:?}",
            run.report.resumes
        );
        assert!(run.report.recovery_seconds > 0.0);
        let events = sink.events();
        assert!(events.iter().any(|e| matches!(
            e,
            TraceEvent::CorruptionDetected {
                detector: "scrub",
                ..
            }
        )));
        assert!(events.iter().any(|e| matches!(
            e,
            TraceEvent::CorruptionRepair {
                action: "rollback",
                to_level: 2,
                attempt: 1,
                ..
            }
        )));
    }

    #[test]
    fn scrub_restarts_the_rung_when_no_checkpoint_exists() {
        let (g, src, ..) = setup();
        let plan = FaultPlan {
            scheduled: vec![parent_flip_at(1)],
            ..FaultPlan::none()
        };
        let config = ResilienceConfig {
            checkpoint: CheckpointPolicy::disabled(),
            scrub: ScrubPolicy::every_level(),
            ..ResilienceConfig::default_runtime()
        };
        let sink = xbfs_engine::trace::MemorySink::new();
        let run = run_ladder(&g, src, &plan, &config, &[Rung::CpuOnly], &sink)
            .expect("restart repair serves");
        assert_eq!(validate(&g, &run.output), Ok(()));
        assert_eq!(run.report.corruption_detected, 1);
        assert_eq!(run.report.corruption_repairs, 1);
        assert!(sink.events().iter().any(|e| matches!(
            e,
            TraceEvent::CorruptionRepair {
                action: "restart",
                to_level: 0,
                ..
            }
        )));
    }

    #[test]
    fn exhausted_repair_budget_is_a_typed_corruption_error() {
        let (g, src, ..) = setup();
        let plan = FaultPlan {
            scheduled: vec![parent_flip_at(1)],
            ..FaultPlan::none()
        };
        let config = ResilienceConfig {
            scrub: ScrubPolicy::every_level(),
            corruption_repair_limit: 0,
            ..ResilienceConfig::default_runtime()
        };
        // Pin the ladder to the corrupting rung: with no repair budget and
        // no rung below it, the run must surface the typed terminal error
        // rather than a wrong tree or a panic.
        let err = run_ladder(
            &g,
            src,
            &plan,
            &config,
            &[Rung::CpuOnly],
            &xbfs_engine::trace::NULL_SINK,
        )
        .expect_err("no repair budget, no lower rung");
        match err {
            XbfsError::CorruptionUnrecovered { attempts, .. } => assert_eq!(attempts, 0),
            other => panic!("expected CorruptionUnrecovered, got {other:?}"),
        }
    }

    #[test]
    fn checksummed_transfer_detects_a_flip_and_retries() {
        let (g, src, ..) = setup();
        // The handoff level depends on the frontier trajectory, so arm a
        // one-shot transfer flip at every plausible level: exactly one
        // fires, at whichever level the upload happens.
        let scheduled = (0..16usize)
            .map(|level| ScheduledFault {
                op: FaultOp::Transfer,
                level,
                kind: FaultKind::BitFlip {
                    payload: CorruptPayload::Bitmap,
                    word: 7,
                    bit: 3,
                },
            })
            .collect();
        let plan = FaultPlan {
            scheduled,
            ..FaultPlan::none()
        };
        let config = ResilienceConfig {
            checksum_transfers: true,
            ..ResilienceConfig::default_runtime()
        };
        let sink = xbfs_engine::trace::MemorySink::new();
        let run = run_ladder(
            &g,
            src,
            &plan,
            &config,
            &[Rung::CrossCpuGpu, Rung::CpuOnly, Rung::Reference],
            &sink,
        )
        .expect("the retried transfer goes through clean");
        // The checksum caught the flip at the receiver; the one-shot does
        // not re-fire, so the retry succeeds and the top rung still serves.
        assert_eq!(run.report.rung, Rung::CrossCpuGpu);
        assert_eq!(validate(&g, &run.output), Ok(()));
        assert_eq!(run.report.corruption_detected, 1);
        assert_eq!(run.report.corruption_repairs, 0);
        assert_eq!(run.report.events.len(), 1);
        assert!(run.report.retries >= 1);
        assert!(run.report.recovery_seconds > 0.0);
        assert!(sink.events().iter().any(|e| matches!(
            e,
            TraceEvent::CorruptionDetected {
                detector: "checksum",
                ..
            }
        )));
    }

    #[test]
    fn checksums_charge_the_simulated_clock() {
        let (g, src, cpu, gpu, link, params) = setup();
        let plan = FaultPlan::none();
        let off = run_cross_resilient_with(
            &g,
            src,
            &cpu,
            &gpu,
            &link,
            &params,
            &plan,
            &ResilienceConfig::default_runtime(),
        )
        .expect("clean run");
        let on = run_cross_resilient_with(
            &g,
            src,
            &cpu,
            &gpu,
            &link,
            &params,
            &plan,
            &ResilienceConfig {
                checksum_transfers: true,
                ..ResilienceConfig::default_runtime()
            },
        )
        .expect("clean checksummed run");
        // Integrity is not free: same tree, strictly more simulated time.
        assert_eq!(on.output, off.output);
        assert!(on.report.total_seconds > off.report.total_seconds);
        assert_eq!(on.report.corruption_detected, 0);
    }

    #[test]
    fn scrub_on_is_free_and_identical_when_nothing_is_corrupt() {
        let (g, src, cpu, gpu, link, params) = setup();
        let plan = FaultPlan::none();
        let off = run_cross_resilient_with(
            &g,
            src,
            &cpu,
            &gpu,
            &link,
            &params,
            &plan,
            &ResilienceConfig::default_runtime(),
        )
        .expect("clean run");
        let on = run_cross_resilient_with(
            &g,
            src,
            &cpu,
            &gpu,
            &link,
            &params,
            &plan,
            &ResilienceConfig {
                scrub: ScrubPolicy::every_level(),
                ..ResilienceConfig::default_runtime()
            },
        )
        .expect("clean scrubbed run");
        // The scrubber overlaps with kernel execution on the simulated
        // platform: a fault-free run is bit- and clock-identical.
        assert_eq!(on.output, off.output);
        assert_eq!(on.report.total_seconds, off.report.total_seconds);
        assert_eq!(on.report.corruption_detected, 0);
    }

    #[test]
    fn scrub_config_rejects_a_zero_interval() {
        let mut c = ResilienceConfig::default_runtime();
        c.scrub = ScrubPolicy::Every { levels: 0 };
        assert!(c.validate().is_err());
        c.scrub = ScrubPolicy::every(3);
        assert!(c.validate().is_ok());
    }
}
