//! Fault recovery: retries, deadlines, and the graceful-degradation ladder.
//!
//! The paper's Algorithm 3 is a one-shot handoff with zero failure
//! handling — fine for a benchmark, fatal for a runtime. This module wraps
//! the cross-architecture executor in a recovery policy driven by a
//! deterministic [`FaultPlan`]:
//!
//! * **Retry with exponential backoff** — transient faults (transfer
//!   failures, kernel timeouts) waste the attempt's simulated time, wait
//!   out a seeded-jitter backoff, and try again up to
//!   [`RetryPolicy::max_attempts`].
//! * **Deadline budget** — every simulated second (productive, wasted, or
//!   backoff) is charged against one clock; blowing the budget aborts the
//!   whole ladder with [`XbfsError::DeadlineExceeded`].
//! * **Degradation ladder** — when a rung fails permanently the traversal
//!   restarts one rung down: `CPUTD+GPUCB` → CPU-only hybrid
//!   ([`FixedMN`]) → sequential reference BFS. Every rung's output goes
//!   through Graph 500 validation before it is allowed to count as
//!   success; a rung that produces an invalid tree is treated as faulty,
//!   never as done.
//!
//! The outcome is always one of two things: a [`RecoveredRun`] holding a
//! validated [`BfsOutput`] plus a [`RunReport`] naming the rung that
//! produced it, or a typed [`XbfsError`] — never a panic.

use crate::combination::run_single;
use crate::cross::{run_cross, CrossParams};
use serde::{Deserialize, Serialize};
use xbfs_archsim::fault::{FaultEvent, FaultKind, FaultOp, FaultPlan, FaultSession};
use xbfs_archsim::{ArchSpec, Link};
use xbfs_engine::{validate, BfsOutput, FixedMN, XbfsError};
use xbfs_graph::{Csr, VertexId};

/// Bounded retry with exponential backoff and seeded jitter.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Attempts per operation, including the first (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the first retry, in simulated seconds.
    pub base_backoff_s: f64,
    /// Multiplier applied to the backoff per further retry (≥ 1).
    pub backoff_factor: f64,
    /// Uniform jitter fraction in `[0, 1]`: each backoff is scaled by
    /// `1 + jitter_frac × u` with `u ~ U[0, 1)` from the fault seed.
    pub jitter_frac: f64,
}

impl RetryPolicy {
    /// The runtime default: 3 attempts, 100 µs base backoff, doubling,
    /// 10 % jitter.
    pub fn default_runtime() -> Self {
        Self {
            max_attempts: 3,
            base_backoff_s: 1e-4,
            backoff_factor: 2.0,
            jitter_frac: 0.1,
        }
    }

    /// No retries: every transient fault is immediately permanent.
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            base_backoff_s: 0.0,
            backoff_factor: 1.0,
            jitter_frac: 0.0,
        }
    }

    /// Validate ranges.
    pub fn validate(&self) -> Result<(), XbfsError> {
        if self.max_attempts == 0 {
            return Err(XbfsError::InvalidArgument {
                what: "retry policy needs max_attempts >= 1".into(),
            });
        }
        if !self.base_backoff_s.is_finite() || self.base_backoff_s < 0.0 {
            return Err(XbfsError::InvalidArgument {
                what: format!(
                    "base_backoff_s must be finite and non-negative, got {}",
                    self.base_backoff_s
                ),
            });
        }
        if !self.backoff_factor.is_finite() || self.backoff_factor < 1.0 {
            return Err(XbfsError::InvalidArgument {
                what: format!(
                    "backoff_factor must be finite and >= 1, got {}",
                    self.backoff_factor
                ),
            });
        }
        if !(0.0..=1.0).contains(&self.jitter_frac) {
            return Err(XbfsError::InvalidArgument {
                what: format!("jitter_frac must be in [0, 1], got {}", self.jitter_frac),
            });
        }
        Ok(())
    }

    /// Backoff before retry number `retry` (0-based), with `u ~ U[0, 1)`.
    fn backoff_s(&self, retry: u32, u: f64) -> f64 {
        self.base_backoff_s * self.backoff_factor.powi(retry as i32) * (1.0 + self.jitter_frac * u)
    }
}

/// One rung of the degradation ladder.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Rung {
    /// The paper's headline `CPUTD+GPUCB` (Algorithm 3).
    CrossCpuGpu,
    /// CPU-only direction-optimizing hybrid with Beamer-default `(M, N)`.
    CpuOnly,
    /// Sequential textbook reference BFS — the last resort.
    Reference,
}

impl std::fmt::Display for Rung {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rung::CrossCpuGpu => write!(f, "CPUTD+GPUCB"),
            Rung::CpuOnly => write!(f, "CPU-only hybrid"),
            Rung::Reference => write!(f, "sequential reference"),
        }
    }
}

/// What happened while serving one traversal.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// The rung that produced the validated output.
    pub rung: Rung,
    /// Every rung attempted, in order (ends with `rung`).
    pub rungs_tried: Vec<Rung>,
    /// Every fault observed, in injection order.
    pub events: Vec<FaultEvent>,
    /// Operation retries spent across all rungs.
    pub retries: u32,
    /// Simulated seconds lost to faults: wasted attempts, backoff waits,
    /// stall excess, and the entire elapsed time of abandoned rungs.
    pub recovery_seconds: f64,
    /// End-to-end simulated seconds, recovery included.
    pub total_seconds: f64,
}

/// A traversal that survived its fault plan.
#[derive(Clone, Debug)]
pub struct RecoveredRun {
    /// The Graph 500–validated BFS result.
    pub output: BfsOutput,
    /// The audit trail.
    pub report: RunReport,
}

/// The global simulated clock, charging every second against an optional
/// deadline budget.
struct Clock {
    elapsed_s: f64,
    budget_s: Option<f64>,
}

impl Clock {
    fn charge(&mut self, seconds: f64) -> Result<(), XbfsError> {
        self.elapsed_s += seconds;
        match self.budget_s {
            Some(b) if self.elapsed_s > b => Err(XbfsError::DeadlineExceeded {
                budget_s: b,
                elapsed_s: self.elapsed_s,
            }),
            _ => Ok(()),
        }
    }
}

/// Why a rung stopped: a blown deadline aborts the whole ladder, any other
/// permanent fault degrades to the next rung.
enum RungError {
    Fatal(XbfsError),
    Degrade(XbfsError),
}

fn splitmix_unit(state: &mut u64) -> f64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64
}

/// Shared per-ladder mutable state threaded through the rungs.
struct Recovery<'a> {
    session: FaultSession<'a>,
    retry: RetryPolicy,
    clock: Clock,
    jitter_rng: u64,
    events: Vec<FaultEvent>,
    retries: u32,
    /// Simulated seconds lost to faults so far.
    lost_s: f64,
    /// Copied out of the plan so `attempt_op` needn't re-borrow it past
    /// the session.
    stall_factor: f64,
}

impl<'a> Recovery<'a> {
    fn new(plan: &'a FaultPlan, retry: RetryPolicy, deadline_s: Option<f64>) -> Self {
        Self {
            session: plan.session(),
            retry,
            clock: Clock {
                elapsed_s: 0.0,
                budget_s: deadline_s,
            },
            jitter_rng: plan.seed ^ 0x5851_f42d_4c95_7f2d,
            events: Vec::new(),
            retries: 0,
            lost_s: 0.0,
            stall_factor: plan.stall_factor,
        }
    }
    /// Run one fallible operation of nominal duration `nominal_s`,
    /// retrying transients per policy. `device` names the kernel's home
    /// for error reporting.
    fn attempt_op(
        &mut self,
        op: FaultOp,
        level: usize,
        nominal_s: f64,
        device: &'static str,
    ) -> Result<(), RungError> {
        for attempt in 1..=self.retry.max_attempts {
            match self.session.check(op, level) {
                None => {
                    self.clock.charge(nominal_s).map_err(RungError::Fatal)?;
                    return Ok(());
                }
                Some(FaultKind::LinkStall) => {
                    self.events.push(FaultEvent {
                        op,
                        level,
                        kind: FaultKind::LinkStall,
                        attempt,
                    });
                    let stalled = nominal_s * self.stall_factor;
                    self.lost_s += stalled - nominal_s;
                    self.clock.charge(stalled).map_err(RungError::Fatal)?;
                    return Ok(());
                }
                Some(kind @ (FaultKind::TransferFailure | FaultKind::KernelTimeout)) => {
                    self.events.push(FaultEvent {
                        op,
                        level,
                        kind,
                        attempt,
                    });
                    // The failed attempt's full time is wasted.
                    self.lost_s += nominal_s;
                    self.clock.charge(nominal_s).map_err(RungError::Fatal)?;
                    if attempt == self.retry.max_attempts {
                        let e = match kind {
                            FaultKind::TransferFailure => XbfsError::TransferFailed {
                                level,
                                attempts: attempt,
                            },
                            _ => XbfsError::KernelTimeout {
                                device,
                                level,
                                attempts: attempt,
                            },
                        };
                        return Err(RungError::Degrade(e));
                    }
                    let u = splitmix_unit(&mut self.jitter_rng);
                    let backoff = self.retry.backoff_s(attempt - 1, u);
                    self.lost_s += backoff;
                    self.retries += 1;
                    self.clock.charge(backoff).map_err(RungError::Fatal)?;
                }
                Some(FaultKind::DeviceLost) => {
                    self.events.push(FaultEvent {
                        op,
                        level,
                        kind: FaultKind::DeviceLost,
                        attempt,
                    });
                    return Err(RungError::Degrade(XbfsError::DeviceLost { device, level }));
                }
            }
        }
        unreachable!("loop returns on success, exhaustion, or device loss")
    }
}

/// Run the cross-architecture combination under a fault plan, degrading
/// down the ladder as devices fail.
///
/// Returns a validated [`RecoveredRun`] or a typed error ­— the only
/// errors that escape are argument validation, [`XbfsError::DeadlineExceeded`],
/// and (if even the reference rung cannot produce a valid tree)
/// [`XbfsError::Validation`] / the last rung's fault.
#[allow(clippy::too_many_arguments)] // the runtime's full failure surface
pub fn run_cross_resilient(
    csr: &Csr,
    source: VertexId,
    cpu: &ArchSpec,
    gpu: &ArchSpec,
    link: &Link,
    params: &CrossParams,
    plan: &FaultPlan,
    retry: &RetryPolicy,
    deadline_s: Option<f64>,
) -> Result<RecoveredRun, XbfsError> {
    params.validate()?;
    plan.validate()?;
    retry.validate()?;
    if source >= csr.num_vertices() {
        return Err(XbfsError::BadSource {
            source,
            num_vertices: csr.num_vertices(),
        });
    }
    if let Some(d) = deadline_s {
        if !d.is_finite() || d <= 0.0 {
            return Err(XbfsError::InvalidArgument {
                what: format!("deadline must be finite and positive, got {d} s"),
            });
        }
    }

    let mut rec = Recovery::new(plan, *retry, deadline_s);
    let mut rungs_tried = Vec::new();
    let mut last_error: Option<XbfsError> = None;

    for rung in [Rung::CrossCpuGpu, Rung::CpuOnly, Rung::Reference] {
        rungs_tried.push(rung);
        let productive_before = rec.clock.elapsed_s - rec.lost_s;
        let outcome = match rung {
            Rung::CrossCpuGpu => run_rung_cross(csr, source, cpu, gpu, link, params, &mut rec),
            Rung::CpuOnly => run_rung_cpu_only(csr, source, cpu, &mut rec),
            Rung::Reference => run_rung_reference(csr, source, cpu, &mut rec),
        };
        match outcome {
            Ok(output) => match validate(csr, &output) {
                Ok(()) => {
                    let report = RunReport {
                        rung,
                        rungs_tried,
                        events: rec.events,
                        retries: rec.retries,
                        recovery_seconds: rec.lost_s,
                        total_seconds: rec.clock.elapsed_s,
                    };
                    return Ok(RecoveredRun { output, report });
                }
                Err(v) => {
                    // A rung that emits a corrupt tree is a faulty rung:
                    // its productive time becomes loss, and the ladder
                    // moves on.
                    let productive = rec.clock.elapsed_s - rec.lost_s - productive_before;
                    rec.lost_s += productive;
                    last_error = Some(XbfsError::Validation(v));
                }
            },
            Err(RungError::Fatal(e)) => return Err(e),
            Err(RungError::Degrade(e)) => {
                // Everything the abandoned rung spent is recovery loss.
                let productive = rec.clock.elapsed_s - rec.lost_s - productive_before;
                rec.lost_s += productive;
                last_error = Some(e);
            }
        }
    }
    Err(last_error.expect("ladder only exits the loop after a rung failure"))
}

/// Rung 1: Algorithm 3 with fault checks on the handoff transfer and every
/// kernel launch.
fn run_rung_cross(
    csr: &Csr,
    source: VertexId,
    cpu: &ArchSpec,
    gpu: &ArchSpec,
    link: &Link,
    params: &CrossParams,
    rec: &mut Recovery<'_>,
) -> Result<BfsOutput, RungError> {
    if rec.session.gpu_lost() {
        return Err(RungError::Degrade(XbfsError::DeviceLost {
            device: "gpu",
            level: 0,
        }));
    }
    let run = run_cross(csr, source, cpu, gpu, link, params);
    let mut handed_off = false;
    for (i, (&pl, &secs)) in run.placements.iter().zip(&run.level_seconds).enumerate() {
        if pl.on_gpu() && !handed_off {
            handed_off = true;
            rec.attempt_op(FaultOp::Transfer, i, run.transfer_seconds, "link")?;
        }
        let (op, device) = if pl.on_gpu() {
            (FaultOp::GpuKernel, "gpu")
        } else {
            (FaultOp::CpuKernel, "cpu")
        };
        rec.attempt_op(op, i, secs, device)?;
    }
    Ok(run.traversal.output)
}

/// Rung 2: CPU-only direction-optimizing hybrid at Beamer-default
/// thresholds, with fault checks on every level kernel.
fn run_rung_cpu_only(
    csr: &Csr,
    source: VertexId,
    cpu: &ArchSpec,
    rec: &mut Recovery<'_>,
) -> Result<BfsOutput, RungError> {
    if rec.session.cpu_lost() {
        return Err(RungError::Degrade(XbfsError::DeviceLost {
            device: "cpu",
            level: 0,
        }));
    }
    let mut mn = FixedMN::new(14.0, 24.0);
    let run = run_single(csr, source, cpu, &mut mn);
    for (i, &secs) in run.level_seconds.iter().enumerate() {
        rec.attempt_op(FaultOp::CpuKernel, i, secs, "cpu")?;
    }
    Ok(run.traversal.output)
}

/// Rung 3: sequential reference BFS — assumed fault-free (no accelerator,
/// no parallel kernels) but still on the simulated clock: each level is
/// charged the CPU's top-down cost scaled up by its core count, the cost
/// model's view of single-threaded execution.
fn run_rung_reference(
    csr: &Csr,
    source: VertexId,
    cpu: &ArchSpec,
    rec: &mut Recovery<'_>,
) -> Result<BfsOutput, RungError> {
    let output = xbfs_engine::reference::run(csr, source);
    let profile = xbfs_archsim::profile(csr, source);
    let sequential_penalty = cpu.cost.parallel_units.max(1.0);
    for lp in &profile.levels {
        let t = cpu.td_level_time(
            lp.frontier_vertices,
            lp.frontier_edges,
            lp.max_frontier_degree,
        ) * sequential_penalty;
        rec.clock.charge(t).map_err(RungError::Fatal)?;
    }
    Ok(output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbfs_archsim::fault::ScheduledFault;

    fn setup() -> (Csr, u32, ArchSpec, ArchSpec, Link, CrossParams) {
        let g = xbfs_graph::rmat::rmat_csr(10, 16);
        let src = crate::training::pick_source(&g, 3).unwrap();
        (
            g,
            src,
            ArchSpec::cpu_sandy_bridge(),
            ArchSpec::gpu_k20x(),
            Link::pcie3(),
            CrossParams {
                handoff: FixedMN::new(64.0, 64.0),
                gpu: FixedMN::new(14.0, 24.0),
            },
        )
    }

    #[test]
    fn healthy_plan_stays_on_the_top_rung() {
        let (g, src, cpu, gpu, link, params) = setup();
        let plan = FaultPlan::none();
        let run = run_cross_resilient(
            &g,
            src,
            &cpu,
            &gpu,
            &link,
            &params,
            &plan,
            &RetryPolicy::default_runtime(),
            None,
        )
        .expect("healthy run succeeds");
        assert_eq!(run.report.rung, Rung::CrossCpuGpu);
        assert_eq!(run.report.rungs_tried, vec![Rung::CrossCpuGpu]);
        assert!(run.report.events.is_empty());
        assert_eq!(run.report.retries, 0);
        assert_eq!(run.report.recovery_seconds, 0.0);
        assert!(run.report.total_seconds > 0.0);
    }

    #[test]
    fn retry_policy_rejects_bad_ranges() {
        let mut r = RetryPolicy::default_runtime();
        r.max_attempts = 0;
        assert!(r.validate().is_err());
        let mut r = RetryPolicy::default_runtime();
        r.backoff_factor = 0.5;
        assert!(r.validate().is_err());
        let mut r = RetryPolicy::default_runtime();
        r.jitter_frac = 2.0;
        assert!(r.validate().is_err());
        assert!(RetryPolicy::default_runtime().validate().is_ok());
        assert!(RetryPolicy::none().validate().is_ok());
    }

    #[test]
    fn cpu_device_loss_reaches_the_reference_rung() {
        let (g, src, cpu, gpu, link, params) = setup();
        // Kill the CPU at its very first kernel: rung 1 dies at level 0,
        // rung 2 is skipped (CPU is gone), the reference rung serves.
        let plan = FaultPlan {
            scheduled: vec![ScheduledFault {
                op: FaultOp::CpuKernel,
                level: 0,
                kind: FaultKind::DeviceLost,
            }],
            ..FaultPlan::none()
        };
        let run = run_cross_resilient(
            &g,
            src,
            &cpu,
            &gpu,
            &link,
            &params,
            &plan,
            &RetryPolicy::default_runtime(),
            None,
        )
        .expect("reference rung still serves");
        assert_eq!(run.report.rung, Rung::Reference);
        assert_eq!(
            run.report.rungs_tried,
            vec![Rung::CrossCpuGpu, Rung::CpuOnly, Rung::Reference]
        );
        assert_eq!(validate(&g, &run.output), Ok(()));
    }

    #[test]
    fn deadline_zero_budget_is_rejected_as_argument() {
        let (g, src, cpu, gpu, link, params) = setup();
        let err = run_cross_resilient(
            &g,
            src,
            &cpu,
            &gpu,
            &link,
            &params,
            &FaultPlan::none(),
            &RetryPolicy::default_runtime(),
            Some(0.0),
        )
        .unwrap_err();
        assert!(matches!(err, XbfsError::InvalidArgument { .. }));
    }

    #[test]
    fn bad_source_is_a_typed_error() {
        let (g, _, cpu, gpu, link, params) = setup();
        let err = run_cross_resilient(
            &g,
            g.num_vertices() + 7,
            &cpu,
            &gpu,
            &link,
            &params,
            &FaultPlan::none(),
            &RetryPolicy::default_runtime(),
            None,
        )
        .unwrap_err();
        assert!(matches!(err, XbfsError::BadSource { .. }));
    }
}
