//! The paper's contribution: adaptive, regression-predicted switch points
//! and the cross-architecture top-down/bottom-up combination.
//!
//! You et al. (ICPP'14) make two moves on top of Beamer-style
//! direction-optimizing BFS:
//!
//! 1. **Adaptive switching** (§III) — instead of hand-tuning the `(M, N)`
//!    thresholds per graph and platform by trial-and-error, train an SVM
//!    regression offline on (graph features, architecture features) → best
//!    switching point, and predict at runtime with negligible overhead.
//!    Implemented by [`features`] (the Fig. 7 sample layout), [`training`]
//!    (Fig. 6's exhaustive-search labeling), [`predictor`] (the online
//!    model) and [`strategies`] (the Fig. 8 evaluation harness).
//! 2. **Cross-architecture combination** (§IV) — run top-down on the CPU
//!    for the tiny early frontiers, hand off to the GPU for bottom-up in
//!    the middle, and *stay* on the GPU switching back to top-down for the
//!    tail (Algorithm 3, `CPUTD+GPUCB`). Implemented by [`cross`], with
//!    single-device combinations in [`combination`] and exhaustive-search
//!    oracles in [`oracle`].
//!
//! Everything executes the real BFS via `xbfs-engine` and charges simulated
//! time via `xbfs-archsim` (see DESIGN.md for the hardware substitution).
//! The one-stop entry point is [`runtime::AdaptiveRuntime`].

pub mod ablation;
pub mod audit;
pub mod checkpoint;
pub mod combination;
pub mod cross;
pub mod features;
pub mod graph500;
pub mod health;
pub mod observe;
pub mod oracle;
pub mod policy_online;
pub mod predictor;
pub mod prelude;
pub mod recovery;
pub mod runtime;
mod seeded;
pub mod service;
pub mod session;
pub mod strategies;
pub mod training;

pub use audit::{
    decision_audit, policy_audit, DecisionAudit, LevelAttribution, PhaseSeconds, PolicyAudit,
    PolicyLevelRegret,
};
pub use checkpoint::{CheckpointPolicy, LevelCheckpoint, Residency};
pub use combination::{run_single, SingleRun};
pub use cross::{
    cost_cross, run_cross, try_cost_cross, try_run_cross, CrossCost, CrossDriver, CrossParams,
    CrossRun, Placement,
};
pub use features::feature_vector;
pub use health::{
    BreakerPolicy, BreakerState, BreakerTransition, Device, DeviceHealth, HealthSnapshot,
};
pub use observe::timeseries::{
    prometheus_slo_text, timeseries_json_lines, LogHistogram, QuantileSummary, SloPolicy,
    SloReport, SnapshotPolicy, TimeSeriesRegistry, TimeWeighted, WindowBurn, WindowSnapshot,
    LATENCY_BUCKETS_S,
};
pub use observe::{
    chrome_trace_json, prometheus_audit_text, prometheus_text, service_chrome_trace_json,
    trace_event_json,
};
pub use oracle::MnGrid;
pub use policy_online::{
    feature_bin, Decision, Observation, OnlineBandit, PolicyCell, PolicyMode, PolicyRun,
    SharedPolicy,
};
pub use predictor::SwitchPredictor;
#[allow(deprecated)]
pub use recovery::{resume_cross_resilient, run_cross_resilient, run_cross_resilient_with};
pub use recovery::{RecoveredRun, ResilienceConfig, ResumeRecord, RetryPolicy, RunReport, Rung};
pub use runtime::AdaptiveRuntime;
pub use service::{
    BatchCompat, BatchPolicy, Disposition, DrainMode, PostMortem, QueryOutcome, QueryRequest,
    QueryRequestBuilder, QueryService, QueryTrace, ScheduleItem, ServiceConfig, ServiceReport,
    TraceSamplePolicy,
};
pub use session::{BatchRun, BatchSession, LaneRun, RunSession};
