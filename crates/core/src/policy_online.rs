//! Online per-level placement policy — the learned replacement for the
//! paper's offline-trained `(M, N)` switch points.
//!
//! The offline pipeline (PR 1) regresses two global thresholds from 140
//! training samples and then never looks at the graph again. Verstraaten
//! et al. (PAPERS.md) showed that per-level, graph-property-driven
//! direction choice beats any single global switch point; with the query
//! service replaying many traversals over one graph, the repeated-query
//! structure needed to *learn* that per-level choice online finally
//! exists. This module supplies it:
//!
//! * [`OnlineBandit`] — a seeded, deterministic multi-armed bandit over
//!   discretized frontier-feature bins. Each level's
//!   [`SwitchContext`] (frontier size, Σdeg, max deg, unvisited-edge
//!   estimate — the same features the work-stealing kernels already fold
//!   into `Partial::discover`) maps to a bin; the arms are the four
//!   direction × device placements. The reward signal is the realized
//!   per-level simulated cost the `KernelCost` trace spans already price.
//! * [`PolicyRun`] — one traversal's view of the bandit: a snapshot taken
//!   at a deterministic point plus a local observation log, so concurrent
//!   service workers never race on shared state (see *Determinism*).
//! * [`SharedPolicy`] — the master bandit a service owns across queries.
//! * [`PolicyMode`] — the off-by-default configuration switch surfaced on
//!   `RunSession` / `BatchSession` / `ServiceConfig`.
//!
//! # Decision rule
//!
//! Per bin, arms are tried in a fixed deterministic order before any
//! exploitation happens:
//!
//! 1. The **offline arm first**: the placement Algorithm 3's `(M1, N1)`
//!    and `(M2, N2)` rules would have chosen is always the bin's first
//!    play, so the learned policy starts from the offline baseline and
//!    can only gather evidence against it.
//! 2. Remaining unplayed arms in a splitmix64-seeded per-bin permutation
//!    (`explore = true` in the emitted `PolicyDecision`).
//! 3. Once every eligible arm has at least one observation: greedy argmin
//!    of mean observed cost, ties to the lowest arm index
//!    (`explore = false`).
//!
//! After the one-way CPU→GPU handoff has fired, only the GPU arms are
//! eligible — Algorithm 3's latch is preserved, the bandit merely chooses
//! *when* to hand off and which direction each level runs.
//!
//! # Determinism
//!
//! Everything is a pure function of `(seed, bin, observation history)`.
//! Service workers run concurrently in wall time, so the master bandit is
//! never mutated mid-flight: each query takes a
//! [`snapshot`](OnlineBandit::snapshot) at its deterministic admission
//! point, decides
//! and self-observes locally, and returns its [`Observation`] log, which
//! the service event loop applies to the master in simulated-completion
//! order. Two runs of the same seeded stream therefore produce
//! byte-identical reports and traces.
//!
//! Placement never changes BFS *results* — frontier evolution is
//! direction-independent — so the policy only moves simulated seconds,
//! never parents or levels.

use crate::cross::Placement;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use xbfs_engine::SwitchContext;

/// Number of bandit arms: the four direction × device placements.
pub const POLICY_ARMS: usize = 4;

/// Number of discretized feature bins (8 frontier-density buckets × 4
/// unvisited-edge buckets × the handoff bit).
pub const POLICY_BINS: u32 = 64;

/// Which per-level policy a run / batch / service uses. The default is
/// the paper's offline pipeline, byte-identical to the pre-policy code.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyMode {
    /// Fixed offline `(M, N)` pairs (Algorithm 3 as trained) — default.
    #[default]
    Offline,
    /// Seeded online bandit over feature bins, updated across queries.
    Online {
        /// Bandit seed: drives each bin's exploration permutation.
        seed: u64,
    },
}

impl PolicyMode {
    /// `true` for [`PolicyMode::Online`].
    pub fn is_online(&self) -> bool {
        matches!(self, PolicyMode::Online { .. })
    }

    /// Parse a CLI-style mode string: `offline`, `online`, or
    /// `online:SEED`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "offline" => Some(PolicyMode::Offline),
            "online" => Some(PolicyMode::Online { seed: 0 }),
            other => other
                .strip_prefix("online:")
                .and_then(|seed| seed.parse().ok())
                .map(|seed| PolicyMode::Online { seed }),
        }
    }
}

impl std::fmt::Display for PolicyMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolicyMode::Offline => write!(f, "offline"),
            PolicyMode::Online { seed } => write!(f, "online:{seed}"),
        }
    }
}

/// splitmix64 finalizer — the deterministic generator family the rest of
/// the codebase (CLI arrival streams, trace sampling) already uses.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stable arm index of a placement (`CpuTd=0, CpuBu=1, GpuTd=2, GpuBu=3`).
pub fn arm_index(p: Placement) -> usize {
    match p {
        Placement::CpuTd => 0,
        Placement::CpuBu => 1,
        Placement::GpuTd => 2,
        Placement::GpuBu => 3,
    }
}

/// Placement of an arm index.
///
/// # Panics
/// Panics if `arm >= POLICY_ARMS`.
pub fn arm_placement(arm: usize) -> Placement {
    match arm {
        0 => Placement::CpuTd,
        1 => Placement::CpuBu,
        2 => Placement::GpuTd,
        3 => Placement::GpuBu,
        other => panic!("arm {other} out of range (0..{POLICY_ARMS})"),
    }
}

/// Discretize a level's frontier features into a bandit bin.
///
/// * 8 frontier-density buckets: `⌊-log₂(|E|cq / |E|)⌋` clamped to
///   `0..=7` (0 = the frontier carries ≥ half the graph's edges, 7 = a
///   thin tail level or an empty frontier).
/// * 4 unvisited-edge buckets: `⌊4 · unvisited / |E|⌋` clamped to `0..=3`.
/// * 1 handoff bit.
pub fn feature_bin(ctx: &SwitchContext, handed_off: bool) -> u32 {
    let fe_bin = if ctx.total_edges == 0 || ctx.frontier_edges == 0 {
        7
    } else {
        let ratio = ctx.frontier_edges as f64 / ctx.total_edges as f64;
        let b = -ratio.log2();
        if b.is_finite() && b > 0.0 {
            (b.floor() as u32).min(7)
        } else {
            0
        }
    };
    let ue_bin = if ctx.total_edges == 0 {
        0
    } else {
        // u128 so a near-u64::MAX unvisited count cannot wrap the ×4.
        ((ctx.unvisited_edges as u128 * 4 / ctx.total_edges as u128).min(3)) as u32
    };
    (fe_bin * 4 + ue_bin) * 2 + u32::from(handed_off)
}

/// One placement decision the bandit made for one level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Decision {
    /// The chosen direction × device placement.
    pub placement: Placement,
    /// Feature bin the decision was drawn from.
    pub bin: u32,
    /// `true` while the bin is still exploring unplayed arms.
    pub explore: bool,
}

/// One realized per-level cost, keyed by the bin and arm that earned it —
/// the unit of the snapshot-and-delta protocol between service workers
/// and the master bandit.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// Feature bin the decision was drawn from.
    pub bin: u32,
    /// Placement that ran the level.
    pub placement: Placement,
    /// Realized simulated cost (level kernel time, plus the handoff
    /// transfer when this decision triggered it).
    pub cost_s: f64,
}

/// Per-bin play counts and cost totals, one slot per arm.
#[derive(Clone, Debug, Default, PartialEq)]
struct BinStats {
    plays: [u64; POLICY_ARMS],
    cost_s: [f64; POLICY_ARMS],
}

/// The seeded deterministic bandit: per-bin, per-arm play counts and mean
/// observed costs. Cloning is cheap enough to snapshot per query (a few
/// dozen small bins at most).
#[derive(Clone, Debug, PartialEq)]
pub struct OnlineBandit {
    seed: u64,
    frozen: bool,
    bins: BTreeMap<u32, BinStats>,
}

impl OnlineBandit {
    /// A fresh learning bandit.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            frozen: false,
            bins: BTreeMap::new(),
        }
    }

    /// A frozen bandit: decisions work, observations are discarded. A
    /// frozen *never-updated* bandit is pure passthrough — every decision
    /// is the offline arm, so runs are bit-identical to
    /// [`PolicyMode::Offline`].
    pub fn frozen(seed: u64) -> Self {
        Self {
            seed,
            frozen: true,
            bins: BTreeMap::new(),
        }
    }

    /// Stop learning; decisions keep using the accumulated means.
    pub fn freeze(&mut self) {
        self.frozen = true;
    }

    /// Whether observations are currently discarded.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// The bandit seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Total observations across all bins and arms.
    pub fn total_plays(&self) -> u64 {
        self.bins
            .values()
            .map(|b| b.plays.iter().sum::<u64>())
            .sum()
    }

    /// `true` when the bandit can never deviate from the offline policy:
    /// frozen with zero observations. Execution paths check this up front
    /// and fall back to the plain offline code path, making the off state
    /// bit-identical (no `PolicyDecision` events, no feature folds).
    pub fn is_passthrough(&self) -> bool {
        self.frozen && self.bins.values().all(|b| b.plays.iter().all(|&p| p == 0))
    }

    /// The bin's per-arm exploration order: a Fisher–Yates permutation of
    /// the arm indices drawn from `splitmix64(seed, bin)`.
    fn exploration_order(&self, bin: u32) -> [usize; POLICY_ARMS] {
        let mut arms = [0usize, 1, 2, 3];
        let mut state =
            splitmix64(self.seed ^ (u64::from(bin)).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        for i in (1..POLICY_ARMS).rev() {
            state = splitmix64(state);
            let j = (state % (i as u64 + 1)) as usize;
            arms.swap(i, j);
        }
        arms
    }

    /// Choose a placement for the level described by `ctx`. `offline` is
    /// the placement Algorithm 3 would choose (always the bin's first
    /// play); `handed_off` restricts the arms to the GPU after the
    /// one-way handoff.
    pub fn decide(&self, ctx: &SwitchContext, handed_off: bool, offline: Placement) -> Decision {
        let bin = feature_bin(ctx, handed_off);
        let plays = self.bins.get(&bin).map_or([0u64; POLICY_ARMS], |b| b.plays);
        let eligible = |arm: usize| -> bool { !handed_off || arm_placement(arm).on_gpu() };

        // 1. Offline arm first.
        let off = arm_index(offline);
        if plays[off] == 0 {
            return Decision {
                placement: offline,
                bin,
                explore: true,
            };
        }
        // 2. Unplayed arms in the bin's seeded permutation order.
        for &arm in &self.exploration_order(bin) {
            if eligible(arm) && plays[arm] == 0 {
                return Decision {
                    placement: arm_placement(arm),
                    bin,
                    explore: true,
                };
            }
        }
        // 3. Greedy argmin of mean cost; ties to the lowest arm index.
        let stats = self.bins.get(&bin).expect("played bin has stats");
        let mut best = off;
        let mut best_mean = f64::INFINITY;
        for arm in 0..POLICY_ARMS {
            if !eligible(arm) {
                continue;
            }
            let mean = stats.cost_s[arm] / stats.plays[arm] as f64;
            if mean < best_mean {
                best_mean = mean;
                best = arm;
            }
        }
        Decision {
            placement: arm_placement(best),
            bin,
            explore: false,
        }
    }

    /// Fold one realized cost into the bin's arm. No-op when frozen.
    pub fn observe(&mut self, bin: u32, placement: Placement, cost_s: f64) {
        if self.frozen {
            return;
        }
        let stats = self.bins.entry(bin).or_default();
        let arm = arm_index(placement);
        stats.plays[arm] = stats.plays[arm].saturating_add(1);
        stats.cost_s[arm] += cost_s;
    }

    /// Apply a worker's observation log (the delta half of the
    /// snapshot-and-delta protocol). No-op when frozen.
    pub fn apply(&mut self, observations: &[Observation]) {
        for obs in observations {
            self.observe(obs.bin, obs.placement, obs.cost_s);
        }
    }

    /// A clone to hand to one query (the snapshot half of the protocol).
    pub fn snapshot(&self) -> OnlineBandit {
        self.clone()
    }
}

/// One traversal's bandit state: a snapshot it decides (and self-observes)
/// against, plus the delta log of observations to return to the master.
/// Within one query the snapshot *is* updated level by level, so later
/// levels of the same traversal see earlier levels' costs — deterministic,
/// because a traversal is sequential.
#[derive(Clone, Debug)]
pub struct PolicyRun {
    bandit: OnlineBandit,
    observations: Vec<Observation>,
}

impl PolicyRun {
    /// Wrap a snapshot for one traversal.
    pub fn new(snapshot: OnlineBandit) -> Self {
        Self {
            bandit: snapshot,
            observations: Vec::new(),
        }
    }

    /// See [`OnlineBandit::is_passthrough`].
    pub fn is_passthrough(&self) -> bool {
        self.bandit.is_passthrough()
    }

    /// See [`OnlineBandit::decide`].
    pub fn decide(&self, ctx: &SwitchContext, handed_off: bool, offline: Placement) -> Decision {
        self.bandit.decide(ctx, handed_off, offline)
    }

    /// Observe a realized cost into the local snapshot and append it to
    /// the delta log (unless the snapshot is frozen).
    pub fn observe(&mut self, bin: u32, placement: Placement, cost_s: f64) {
        if self.bandit.is_frozen() {
            return;
        }
        self.bandit.observe(bin, placement, cost_s);
        self.observations.push(Observation {
            bin,
            placement,
            cost_s,
        });
    }

    /// The delta log accumulated so far.
    pub fn observations(&self) -> &[Observation] {
        &self.observations
    }

    /// Drain the delta log (for returning it to the service event loop).
    pub fn take_observations(&mut self) -> Vec<Observation> {
        std::mem::take(&mut self.observations)
    }
}

/// Interior-mutable [`PolicyRun`] handle threaded through one traversal's
/// execution (the drivers hold shared references to their arguments, so
/// the per-level decide/observe cycle needs a cell).
pub type PolicyCell = RefCell<PolicyRun>;

/// The master bandit a service (or any multi-query caller) owns: cheap to
/// clone, snapshot per query, and apply deltas in completion order.
#[derive(Clone, Debug)]
pub struct SharedPolicy {
    inner: Arc<Mutex<OnlineBandit>>,
}

impl SharedPolicy {
    /// Wrap an existing bandit.
    pub fn new(bandit: OnlineBandit) -> Self {
        Self {
            inner: Arc::new(Mutex::new(bandit)),
        }
    }

    /// A fresh learning bandit under `seed`.
    pub fn online(seed: u64) -> Self {
        Self::new(OnlineBandit::new(seed))
    }

    /// The shared policy for a [`PolicyMode`], `None` for offline.
    pub fn from_mode(mode: PolicyMode) -> Option<Self> {
        match mode {
            PolicyMode::Offline => None,
            PolicyMode::Online { seed } => Some(Self::online(seed)),
        }
    }

    /// Snapshot the master (a deep clone).
    pub fn snapshot(&self) -> OnlineBandit {
        self.inner.lock().expect("policy lock").snapshot()
    }

    /// A fresh [`PolicyCell`] seeded from the current master state.
    pub fn run_cell(&self) -> PolicyCell {
        RefCell::new(PolicyRun::new(self.snapshot()))
    }

    /// Apply a completed query's observation log to the master.
    pub fn apply(&self, observations: &[Observation]) {
        self.inner.lock().expect("policy lock").apply(observations);
    }

    /// Total observations the master has accumulated.
    pub fn total_plays(&self) -> u64 {
        self.inner.lock().expect("policy lock").total_plays()
    }
}

/// Build the [`SwitchContext`] the cross executor's decision hook feeds
/// the bandit: the same features [`TraversalState::step`] computes, read
/// out before the step so the decision can be forced.
///
/// [`TraversalState::step`]: xbfs_engine::TraversalState::step
pub fn switch_context_for(
    csr: &xbfs_graph::Csr,
    state: &xbfs_engine::TraversalState,
) -> SwitchContext {
    let (frontier_edges, max_frontier_degree) =
        state.frontier.iter().fold((0u64, 0u64), |(sum, max), &v| {
            let d = csr.degree(v);
            (sum.saturating_add(d), max.max(d))
        });
    SwitchContext {
        level: state.next_level,
        frontier_vertices: state.frontier.len() as u64,
        frontier_edges,
        max_frontier_degree,
        unvisited_edges: state.unvisited_edges,
        total_vertices: csr.num_vertices() as u64,
        total_edges: csr.num_directed_edges(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(frontier_edges: u64, unvisited_edges: u64) -> SwitchContext {
        SwitchContext {
            level: 2,
            frontier_vertices: 100,
            frontier_edges,
            max_frontier_degree: 40,
            unvisited_edges,
            total_vertices: 4096,
            total_edges: 65_536,
        }
    }

    #[test]
    fn feature_bin_buckets_are_stable_and_bounded() {
        // Dense frontier, everything unvisited, CPU phase.
        let dense = feature_bin(&ctx(40_000, 60_000), false);
        // Thin frontier, little unvisited, GPU phase.
        let thin = feature_bin(&ctx(10, 100), true);
        assert_ne!(dense, thin);
        for fe in [0, 1, 100, 65_536] {
            for ue in [0, 65_536, u64::MAX] {
                for handed in [false, true] {
                    let bin = feature_bin(&ctx(fe, ue), handed);
                    assert!(bin < POLICY_BINS, "bin {bin} out of range");
                    assert_eq!(bin % 2 == 1, handed, "handoff bit must be bit 0");
                }
            }
        }
        // Degenerate totals never panic.
        let mut z = ctx(0, 0);
        z.total_edges = 0;
        assert!(feature_bin(&z, false) < POLICY_BINS);
    }

    #[test]
    fn first_play_is_always_the_offline_arm() {
        let bandit = OnlineBandit::new(7);
        for offline in [Placement::CpuTd, Placement::GpuTd, Placement::GpuBu] {
            let d = bandit.decide(&ctx(1000, 30_000), offline.on_gpu(), offline);
            assert_eq!(d.placement, offline);
            assert!(d.explore);
        }
    }

    #[test]
    fn exploration_covers_all_arms_then_exploits_the_argmin() {
        let mut bandit = OnlineBandit::new(42);
        let c = ctx(1000, 30_000);
        let mut seen = Vec::new();
        // Feed each decision a distinctive cost; CpuBu gets the cheapest.
        for _ in 0..POLICY_ARMS {
            let d = bandit.decide(&c, false, Placement::CpuTd);
            assert!(d.explore, "still exploring: {seen:?}");
            assert!(
                !seen.contains(&d.placement),
                "arm repeated during exploration"
            );
            let cost = if d.placement == Placement::CpuBu {
                0.5
            } else {
                2.0
            };
            bandit.observe(d.bin, d.placement, cost);
            seen.push(d.placement);
        }
        assert_eq!(seen[0], Placement::CpuTd, "offline arm explores first");
        let d = bandit.decide(&c, false, Placement::CpuTd);
        assert!(!d.explore);
        assert_eq!(d.placement, Placement::CpuBu);
    }

    #[test]
    fn handoff_restricts_arms_to_the_gpu() {
        let mut bandit = OnlineBandit::new(9);
        let c = ctx(1000, 30_000);
        for _ in 0..8 {
            let d = bandit.decide(&c, true, Placement::GpuBu);
            assert!(d.placement.on_gpu(), "{:?} escaped the latch", d.placement);
            bandit.observe(d.bin, d.placement, 1.0);
        }
    }

    #[test]
    fn decisions_are_deterministic_across_clones_and_seeds_differ() {
        let a = OnlineBandit::new(5);
        let b = a.snapshot();
        let c = ctx(64, 60_000);
        // Exhaust the offline arm so the permutation drives the choice.
        let mut a2 = a.clone();
        a2.observe(feature_bin(&c, false), Placement::CpuTd, 1.0);
        let mut b2 = b.clone();
        b2.observe(feature_bin(&c, false), Placement::CpuTd, 1.0);
        assert_eq!(
            a2.decide(&c, false, Placement::CpuTd),
            b2.decide(&c, false, Placement::CpuTd)
        );
        // Different seeds explore (generally) in different orders over bins.
        let orders: Vec<[usize; POLICY_ARMS]> = (0..8u64)
            .map(|s| OnlineBandit::new(s).exploration_order(11))
            .collect();
        assert!(
            orders.windows(2).any(|w| w[0] != w[1]),
            "all seeds produced one permutation"
        );
    }

    #[test]
    fn frozen_bandit_is_passthrough_until_it_has_plays() {
        let mut f = OnlineBandit::frozen(3);
        assert!(f.is_passthrough());
        f.observe(0, Placement::CpuTd, 1.0); // discarded
        assert!(f.is_passthrough());
        assert_eq!(f.total_plays(), 0);

        let mut warm = OnlineBandit::new(3);
        warm.observe(0, Placement::CpuTd, 1.0);
        warm.freeze();
        assert!(!warm.is_passthrough(), "frozen-with-history still decides");
        let before = warm.clone();
        warm.observe(0, Placement::GpuTd, 0.1);
        assert_eq!(warm, before, "frozen bandit must not learn");
    }

    #[test]
    fn policy_run_logs_deltas_and_master_applies_them() {
        let shared = SharedPolicy::online(21);
        let cell = shared.run_cell();
        {
            let mut run = cell.borrow_mut();
            run.observe(4, Placement::CpuTd, 1.5);
            run.observe(4, Placement::GpuTd, 0.5);
            assert_eq!(run.observations().len(), 2);
        }
        assert_eq!(shared.total_plays(), 0, "master untouched until applied");
        let obs = cell.borrow_mut().take_observations();
        shared.apply(&obs);
        assert_eq!(shared.total_plays(), 2);
        assert!(cell.borrow().observations().is_empty());
        // Two snapshot/apply cycles replay identically.
        let again = SharedPolicy::online(21);
        again.apply(&obs);
        assert_eq!(again.snapshot(), shared.snapshot());
    }

    #[test]
    fn policy_mode_parses_and_displays() {
        assert_eq!(PolicyMode::parse("offline"), Some(PolicyMode::Offline));
        assert_eq!(
            PolicyMode::parse("online"),
            Some(PolicyMode::Online { seed: 0 })
        );
        assert_eq!(
            PolicyMode::parse("online:77"),
            Some(PolicyMode::Online { seed: 77 })
        );
        assert_eq!(PolicyMode::parse("sideways"), None);
        assert_eq!(PolicyMode::Online { seed: 77 }.to_string(), "online:77");
        assert_eq!(PolicyMode::default(), PolicyMode::Offline);
        assert!(PolicyMode::Online { seed: 0 }.is_online());
    }

    #[test]
    fn observation_round_trips_through_json() {
        let obs = vec![
            Observation {
                bin: 3,
                placement: Placement::CpuBu,
                cost_s: 0.25,
            },
            Observation {
                bin: 60,
                placement: Placement::GpuTd,
                cost_s: 1.0,
            },
        ];
        let json = serde_json::to_string(&obs).expect("serializes");
        let back: Vec<Observation> = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, obs);
    }
}
