//! The Graph 500 benchmark protocol.
//!
//! The paper's §V is run "based on the Graph 500 benchmark": construct a
//! Kronecker graph (kernel 1), BFS from a set of random degree-≥1 roots
//! (kernel 2), validate every output, and report TEPS with the harmonic
//! mean across roots. This module packages that protocol over both the
//! real engines (host wall-clock) and the simulated platforms, so the
//! §V-D comparisons can be run exactly the way the benchmark specifies.

use crate::{
    combination::run_single,
    cross::{run_cross, CrossParams},
    training::pick_source,
};
use serde::{Deserialize, Serialize};
use std::time::Instant;
use xbfs_archsim::{ArchSpec, Link};
use xbfs_engine::{
    metrics::{harmonic_mean_teps, Teps},
    reference, validate, SwitchPolicy,
};
use xbfs_graph::{Csr, RmatConfig, RmatGenerator, VertexId};

/// Benchmark parameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Graph500Config {
    /// Graph 500 SCALE.
    pub scale: u32,
    /// Graph 500 edgefactor.
    pub edgefactor: u32,
    /// BFS roots to sample (the official benchmark uses 64).
    pub num_roots: usize,
    /// Generator/root-sampling seed.
    pub seed: u64,
}

impl Graph500Config {
    /// A configuration with the official 64 roots.
    pub fn new(scale: u32, edgefactor: u32) -> Self {
        Self {
            scale,
            edgefactor,
            num_roots: 64,
            seed: 0x6500,
        }
    }

    /// Kernel 1: construct the graph.
    pub fn build_graph(&self) -> Csr {
        let cfg = RmatConfig::new(self.scale, self.edgefactor).with_seed(self.seed);
        RmatGenerator::new(cfg).csr()
    }

    /// Sample `num_roots` distinct degree-≥1 roots, benchmark style.
    pub fn sample_roots(&self, csr: &Csr) -> Vec<VertexId> {
        let mut roots = Vec::with_capacity(self.num_roots);
        let mut salt = 0u64;
        while roots.len() < self.num_roots && salt < 64 * self.num_roots as u64 {
            if let Some(r) = pick_source(csr, self.seed ^ salt) {
                if !roots.contains(&r) {
                    roots.push(r);
                }
            }
            salt += 1;
        }
        roots
    }
}

/// One root's measurement.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RootResult {
    /// The BFS root.
    pub root: VertexId,
    /// Traversal seconds (wall-clock or simulated, per the runner).
    pub seconds: f64,
    /// Undirected edges in the traversed component (the TEPS numerator).
    pub component_edges: u64,
    /// Vertices visited.
    pub visited: u64,
}

impl RootResult {
    /// This root's TEPS.
    pub fn teps(&self) -> f64 {
        self.component_edges as f64 / self.seconds
    }
}

/// A completed benchmark run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Graph500Report {
    /// The configuration that ran.
    pub config: Graph500Config,
    /// Label of the runner ("reference", "hybrid", "CPUTD+GPUCB", …).
    pub runner: String,
    /// Per-root measurements.
    pub roots: Vec<RootResult>,
    /// Every output passed the Graph 500 validator.
    pub all_validated: bool,
}

impl Graph500Report {
    /// The benchmark's headline number: harmonic-mean TEPS across roots.
    pub fn harmonic_mean_teps(&self) -> f64 {
        let samples: Vec<Teps> = self
            .roots
            .iter()
            .filter_map(|r| Teps::try_new(r.component_edges, r.seconds).ok())
            .collect();
        harmonic_mean_teps(&samples)
    }

    /// Mean traversal seconds across roots.
    pub fn mean_seconds(&self) -> f64 {
        if self.roots.is_empty() {
            return 0.0;
        }
        self.roots.iter().map(|r| r.seconds).sum::<f64>() / self.roots.len() as f64
    }
}

/// Run kernel 2 with the naive FIFO reference, real wall-clock.
pub fn run_reference(config: &Graph500Config) -> Graph500Report {
    let csr = config.build_graph();
    let roots = config.sample_roots(&csr);
    let mut results = Vec::with_capacity(roots.len());
    let mut all_validated = true;
    for root in roots {
        let t = Instant::now();
        let out = reference::run(&csr, root);
        let seconds = t.elapsed().as_secs_f64().max(1e-9);
        all_validated &= validate(&csr, &out).is_ok();
        results.push(RootResult {
            root,
            seconds,
            component_edges: reference::component_edges(&csr, &out),
            visited: out.visited_count(),
        });
    }
    Graph500Report {
        config: *config,
        runner: "reference".into(),
        roots: results,
        all_validated,
    }
}

/// Run kernel 2 with the parallel direction-optimizing engine, real
/// wall-clock, a fresh policy per root from `make_policy`.
pub fn run_hybrid(
    config: &Graph500Config,
    threads: usize,
    make_policy: impl Fn() -> Box<dyn SwitchPolicy>,
) -> Graph500Report {
    let csr = config.build_graph();
    let roots = config.sample_roots(&csr);
    let mut results = Vec::with_capacity(roots.len());
    let mut all_validated = true;
    for root in roots {
        let mut policy = make_policy();
        let t = Instant::now();
        let traversal = xbfs_engine::par::run(&csr, root, policy.as_mut(), threads);
        let seconds = t.elapsed().as_secs_f64().max(1e-9);
        all_validated &= validate(&csr, &traversal.output).is_ok();
        results.push(RootResult {
            root,
            seconds,
            component_edges: reference::component_edges(&csr, &traversal.output),
            visited: traversal.output.visited_count(),
        });
    }
    Graph500Report {
        config: *config,
        runner: "hybrid".into(),
        roots: results,
        all_validated,
    }
}

/// Run kernel 2 on a simulated single device with a policy per root.
pub fn run_simulated_single(
    config: &Graph500Config,
    arch: &ArchSpec,
    make_policy: impl Fn() -> Box<dyn SwitchPolicy>,
) -> Graph500Report {
    let csr = config.build_graph();
    let roots = config.sample_roots(&csr);
    let mut results = Vec::with_capacity(roots.len());
    let mut all_validated = true;
    for root in roots {
        let mut policy = make_policy();
        let run = run_single(&csr, root, arch, policy.as_mut());
        all_validated &= validate(&csr, &run.traversal.output).is_ok();
        results.push(RootResult {
            root,
            seconds: run.total_seconds,
            component_edges: reference::component_edges(&csr, &run.traversal.output),
            visited: run.traversal.output.visited_count(),
        });
    }
    Graph500Report {
        config: *config,
        runner: format!("{}CB", arch.name),
        roots: results,
        all_validated,
    }
}

/// Run kernel 2 on the simulated cross-architecture pair (Algorithm 3).
pub fn run_simulated_cross(
    config: &Graph500Config,
    cpu: &ArchSpec,
    gpu: &ArchSpec,
    link: &Link,
    params: &CrossParams,
) -> Graph500Report {
    let csr = config.build_graph();
    let roots = config.sample_roots(&csr);
    let mut results = Vec::with_capacity(roots.len());
    let mut all_validated = true;
    for root in roots {
        let run = run_cross(&csr, root, cpu, gpu, link, params);
        all_validated &= validate(&csr, &run.traversal.output).is_ok();
        results.push(RootResult {
            root,
            seconds: run.total_seconds,
            component_edges: reference::component_edges(&csr, &run.traversal.output),
            visited: run.traversal.output.visited_count(),
        });
    }
    Graph500Report {
        config: *config,
        runner: "CPUTD+GPUCB".into(),
        roots: results,
        all_validated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbfs_engine::FixedMN;

    fn small() -> Graph500Config {
        Graph500Config {
            scale: 10,
            edgefactor: 8,
            num_roots: 8,
            seed: 5,
        }
    }

    #[test]
    fn roots_are_distinct_and_valid() {
        let cfg = small();
        let g = cfg.build_graph();
        let roots = cfg.sample_roots(&g);
        assert_eq!(roots.len(), 8);
        let mut dedup = roots.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), roots.len(), "duplicate roots");
        assert!(roots.iter().all(|&r| g.degree(r) > 0));
    }

    #[test]
    fn reference_run_validates_and_reports() {
        let report = run_reference(&small());
        assert!(report.all_validated);
        assert_eq!(report.roots.len(), 8);
        assert!(report.harmonic_mean_teps() > 0.0);
        assert!(report.mean_seconds() > 0.0);
    }

    #[test]
    fn hybrid_matches_reference_coverage() {
        let cfg = small();
        let reference = run_reference(&cfg);
        let hybrid = run_hybrid(&cfg, 2, || Box::new(FixedMN::new(14.0, 24.0)));
        assert!(hybrid.all_validated);
        // Same roots (same seed) → same visit counts and edge counts.
        for (a, b) in reference.roots.iter().zip(&hybrid.roots) {
            assert_eq!(a.root, b.root);
            assert_eq!(a.visited, b.visited);
            assert_eq!(a.component_edges, b.component_edges);
        }
    }

    #[test]
    fn simulated_cross_beats_simulated_mic() {
        let cfg = small();
        let mic = run_simulated_single(&cfg, &ArchSpec::mic_knights_corner(), || {
            Box::new(FixedMN::new(14.0, 24.0))
        });
        let cross = run_simulated_cross(
            &cfg,
            &ArchSpec::cpu_sandy_bridge(),
            &ArchSpec::gpu_k20x(),
            &Link::pcie3(),
            &CrossParams {
                handoff: FixedMN::new(64.0, 64.0),
                gpu: FixedMN::new(14.0, 24.0),
            },
        );
        assert!(mic.all_validated && cross.all_validated);
        assert!(
            cross.harmonic_mean_teps() > mic.harmonic_mean_teps(),
            "cross {} vs mic {}",
            cross.harmonic_mean_teps(),
            mic.harmonic_mean_teps()
        );
        assert_eq!(cross.runner, "CPUTD+GPUCB");
        assert_eq!(mic.runner, "MICCB");
    }

    #[test]
    fn harmonic_mean_is_dominated_by_slow_roots() {
        let report = Graph500Report {
            config: small(),
            runner: "x".into(),
            roots: vec![
                RootResult {
                    root: 0,
                    seconds: 1.0,
                    component_edges: 100,
                    visited: 10,
                },
                RootResult {
                    root: 1,
                    seconds: 100.0,
                    component_edges: 100,
                    visited: 10,
                },
            ],
            all_validated: true,
        };
        let hm = report.harmonic_mean_teps();
        assert!(hm < 2.0 && hm > 1.9, "hm {hm}"); // ≈ 2/(1/100+1/1)
    }
}
