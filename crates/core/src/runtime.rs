//! The end-to-end adaptive runtime — the library's front door.
//!
//! Bundles the trained predictor with the platform description and exposes
//! the two things a user does with this system:
//!
//! * [`AdaptiveRuntime::run_cross`] — Algorithm 3 with regression-predicted
//!   switch points (`CPUTD+GPUCB`, the paper's best configuration);
//! * [`AdaptiveRuntime::run_on`] — a single-device combination with a
//!   predicted `(M, N)`.

use crate::{
    checkpoint::{CheckpointPolicy, LevelCheckpoint},
    combination::{run_single, SingleRun},
    cross::{run_cross, CrossParams, CrossRun},
    predictor::SwitchPredictor,
    recovery::{RecoveredRun, ResilienceConfig, RetryPolicy},
    session::RunSession,
    training::{generate, paper_arch_pairs, TrainingConfig},
};
use xbfs_archsim::{ArchSpec, FaultPlan, Link};
use xbfs_engine::XbfsError;
use xbfs_graph::{Csr, GraphStats, VertexId};

/// A trained, ready-to-run adaptive BFS system.
#[derive(Clone, Debug)]
pub struct AdaptiveRuntime {
    /// The host CPU.
    pub cpu: ArchSpec,
    /// The accelerator running the bottom-up/top-down middle game.
    pub gpu: ArchSpec,
    /// The third platform of the paper's comparison.
    pub mic: ArchSpec,
    /// Host↔accelerator interconnect.
    pub link: Link,
    /// The trained switching-point predictor.
    pub predictor: SwitchPredictor,
}

impl AdaptiveRuntime {
    /// Train a runtime on the paper's platform trio with `config`.
    pub fn train(config: &TrainingConfig) -> Self {
        let link = Link::pcie3();
        let ts = generate(config, &paper_arch_pairs(), &link);
        Self {
            cpu: ArchSpec::cpu_sandy_bridge(),
            gpu: ArchSpec::gpu_k20x(),
            mic: ArchSpec::mic_knights_corner(),
            link,
            predictor: SwitchPredictor::train(&ts),
        }
    }

    /// Train on the small test configuration (fast; used by tests and the
    /// quickstart example).
    pub fn quick_trained() -> Self {
        Self::train(&TrainingConfig::quick())
    }

    /// Predict Algorithm 3's parameters for `graph`.
    pub fn predict_params(&self, graph: &GraphStats) -> CrossParams {
        self.predictor.predict_cross(graph, &self.cpu, &self.gpu)
    }

    /// Run the cross-architecture combination (`CPUTD+GPUCB`) with
    /// predicted switch points.
    pub fn run_cross(&self, csr: &Csr, stats: &GraphStats, source: VertexId) -> CrossRun {
        let params = self.predict_params(stats);
        run_cross(csr, source, &self.cpu, &self.gpu, &self.link, &params)
    }

    /// Start configuring a resilient traversal on this runtime's devices.
    ///
    /// Equivalent to [`RunSession::new`]`(self, csr, stats)` — switch
    /// parameters are predicted from `stats` unless the session overrides
    /// them.
    pub fn session<'a>(&'a self, csr: &'a Csr, stats: &'a GraphStats) -> RunSession<'a> {
        RunSession::new(self, csr, stats)
    }

    /// Run the cross-architecture combination under a fault plan, with
    /// retry, an optional deadline, and the degradation ladder
    /// (`CPUTD+GPUCB` → CPU-only hybrid → sequential reference). Always
    /// returns either a Graph 500–validated output with a
    /// [`crate::recovery::RunReport`] or a typed error — never panics.
    #[deprecated(
        note = "use `runtime.session(csr, stats).source(..).fault_plan(..).run()` instead"
    )]
    pub fn run_cross_resilient(
        &self,
        csr: &Csr,
        stats: &GraphStats,
        source: VertexId,
        plan: &FaultPlan,
        retry: &RetryPolicy,
        deadline_s: Option<f64>,
    ) -> Result<RecoveredRun, XbfsError> {
        self.session(csr, stats)
            .source(source)
            .fault_plan(plan)
            .resilience(ResilienceConfig {
                retry: *retry,
                deadline_s,
                checkpoint: CheckpointPolicy::disabled(),
                ..ResilienceConfig::default_runtime()
            })
            .run()
    }

    /// [`Self::run_cross_resilient`] with the full [`ResilienceConfig`]
    /// surface: level-granular checkpoints (optionally spilled to disk)
    /// and per-device circuit breakers on top of retries and the deadline
    /// budget.
    #[deprecated(
        note = "use `runtime.session(csr, stats).source(..).fault_plan(..).resilience(..).run()` instead"
    )]
    pub fn run_cross_resilient_with(
        &self,
        csr: &Csr,
        stats: &GraphStats,
        source: VertexId,
        plan: &FaultPlan,
        config: &ResilienceConfig,
    ) -> Result<RecoveredRun, XbfsError> {
        self.session(csr, stats)
            .source(source)
            .fault_plan(plan)
            .resilience(config.clone())
            .run()
    }

    /// Resume a traversal from a [`LevelCheckpoint`] (typically loaded
    /// from a spill file after a crash): the ladder restarts at the
    /// checkpoint's rung and level instead of level 0, with the clock,
    /// fault stream, and breaker states continuing where they stopped.
    #[deprecated(
        note = "use `runtime.session(csr, stats).fault_plan(..).resilience(..).resume(ck)` instead"
    )]
    pub fn resume_cross(
        &self,
        csr: &Csr,
        stats: &GraphStats,
        plan: &FaultPlan,
        config: &ResilienceConfig,
        checkpoint: &LevelCheckpoint,
    ) -> Result<RecoveredRun, XbfsError> {
        self.session(csr, stats)
            .fault_plan(plan)
            .resilience(config.clone())
            .resume(checkpoint)
    }

    /// Run a single-device combination with a predicted `(M, N)`.
    pub fn run_on(
        &self,
        csr: &Csr,
        stats: &GraphStats,
        source: VertexId,
        arch: &ArchSpec,
    ) -> SingleRun {
        let mut mn = self.predictor.predict(stats, arch, arch);
        run_single(csr, source, arch, &mut mn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbfs_engine::validate;

    fn runtime() -> AdaptiveRuntime {
        AdaptiveRuntime::quick_trained()
    }

    #[test]
    fn end_to_end_cross_run_is_valid_and_timed() {
        let rt = runtime();
        let g = xbfs_graph::rmat::rmat_csr(11, 16);
        let stats = GraphStats::rmat(&g, 0.57, 0.19, 0.19, 0.05);
        let src = crate::training::pick_source(&g, 1).unwrap();
        let run = rt.run_cross(&g, &stats, src);
        assert_eq!(validate(&g, &run.traversal.output), Ok(()));
        assert!(run.total_seconds > 0.0);
        assert_eq!(run.level_seconds.len(), run.placements.len());
    }

    #[test]
    fn single_device_runs_differ_only_in_time() {
        let rt = runtime();
        let g = xbfs_graph::rmat::rmat_csr(10, 16);
        let stats = GraphStats::rmat(&g, 0.57, 0.19, 0.19, 0.05);
        let src = crate::training::pick_source(&g, 2).unwrap();
        let on_cpu = rt.run_on(&g, &stats, src, &rt.cpu);
        let on_mic = rt.run_on(&g, &stats, src, &rt.mic);
        assert_eq!(
            on_cpu.traversal.output.levels,
            on_mic.traversal.output.levels
        );
        assert!(on_mic.total_seconds > on_cpu.total_seconds);
    }

    #[test]
    fn resilient_entry_degrades_on_gpu_loss() {
        use crate::recovery::Rung;

        let rt = runtime();
        let g = xbfs_graph::rmat::rmat_csr(10, 16);
        let stats = GraphStats::rmat(&g, 0.57, 0.19, 0.19, 0.05);
        let src = crate::training::pick_source(&g, 4).unwrap();

        let healthy = rt
            .session(&g, &stats)
            .source(src)
            .checkpoints(CheckpointPolicy::disabled())
            .run()
            .expect("healthy run");
        assert_eq!(healthy.report.rung, Rung::CrossCpuGpu);

        // Kill the GPU at its first kernel launch, whatever level the
        // predicted handoff lands on: the ladder must fall back to the
        // CPU-only hybrid and still produce the same level structure.
        let gpu_dies = FaultPlan {
            p_device_lost: 1.0,
            ..FaultPlan::none()
        };
        let run = rt
            .session(&g, &stats)
            .source(src)
            .fault_plan(&gpu_dies)
            .checkpoints(CheckpointPolicy::disabled())
            .run()
            .expect("degraded run");
        assert_eq!(run.report.rung, Rung::CpuOnly);
        assert_eq!(validate(&g, &run.output), Ok(()));
        assert_eq!(run.output.levels, healthy.output.levels);
    }

    #[test]
    fn runtime_spills_checkpoints_and_resumes_them() {
        let rt = runtime();
        let g = xbfs_graph::rmat::rmat_csr(10, 16);
        let stats = GraphStats::rmat(&g, 0.57, 0.19, 0.19, 0.05);
        let src = crate::training::pick_source(&g, 4).unwrap();
        let dir = std::env::temp_dir().join("xbfs-runtime-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("runtime-resume.json");
        let path_s = path.to_str().unwrap().to_string();

        let policy = CheckpointPolicy {
            interval_levels: 2,
            spill: Some(path_s.clone()),
        };
        let full = rt
            .session(&g, &stats)
            .source(src)
            .checkpoints(policy.clone())
            .run()
            .expect("spilling run");
        assert!(full.report.checkpoints_taken > 0);

        let ck = LevelCheckpoint::load(&path_s).expect("spill exists");
        let resumed = rt
            .session(&g, &stats)
            .checkpoints(policy)
            .resume(&ck)
            .expect("resume");
        assert_eq!(resumed.output, full.output);
        assert_eq!(resumed.report.resumed_from_level, Some(ck.level()));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn predicted_cross_is_not_pathological() {
        // The predicted parameters must land within ~10× of the exhaustive
        // optimum (the paper claims 95 %; the quick training set is tiny,
        // so the test only excludes catastrophe).
        let rt = runtime();
        let g = xbfs_graph::rmat::rmat_csr(12, 16);
        let stats = GraphStats::rmat(&g, 0.57, 0.19, 0.19, 0.05);
        let src = crate::training::pick_source(&g, 3).unwrap();
        let prof = xbfs_archsim::profile(&g, src);
        let params = rt.predict_params(&stats);
        let predicted = crate::cross::cost_cross(&prof, &rt.cpu, &rt.gpu, &rt.link, &params);
        let best = crate::oracle::best_mn_cross(
            &prof,
            &rt.cpu,
            &rt.gpu,
            &rt.link,
            params.gpu,
            &crate::oracle::MnGrid::paper_1000(),
        );
        assert!(
            predicted.total_seconds < 10.0 * best.seconds,
            "predicted {} vs best {}",
            predicted.total_seconds,
            best.seconds
        );
    }
}
