//! The online switching-point predictor (Fig. 6, right column).
//!
//! Two ε-SVR models — one for `M`, one for `N` — trained on the Fig. 6
//! exhaustive-search labels. At runtime, assembling the feature vector and
//! evaluating two kernel expansions over ≤140 support vectors costs
//! microseconds: the paper's "<0.1 % of BFS execution time" claim is easy
//! to meet (and the benches verify it).

use crate::{cross::CrossParams, features::feature_vector, training::TrainingSet};
use serde::{Deserialize, Serialize};
use xbfs_archsim::ArchSpec;
use xbfs_engine::FixedMN;
use xbfs_graph::GraphStats;
use xbfs_svm::{Regressor, Svr, SvrConfig};

/// Bounds the raw regression outputs are clamped into. Predictions outside
/// the searched grid are extrapolation artifacts; clamping keeps `FixedMN`
/// valid and matches how the paper's discrete search space is used.
const M_RANGE: (f64, f64) = (1.0, 500.0);
const N_RANGE: (f64, f64) = (1.0, 200.0);

/// Trained predictor for `(M, N)`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SwitchPredictor {
    model_m: Svr,
    model_n: Svr,
}

impl SwitchPredictor {
    /// Train both models with per-parameter default hyper-parameters.
    ///
    /// `C` is set high and ε to one grid step: the labels come from an
    /// exact search, so we want a tight fit, and the cost of an `M` that is
    /// off by one grid cell is negligible (Fig. 8's Regression bar).
    pub fn train(ts: &TrainingSet) -> Self {
        let mut cfg = SvrConfig::default_for_dim(crate::features::FEATURE_DIM);
        cfg.c = 1000.0;
        cfg.epsilon = 2.0;
        Self::train_with(ts, cfg)
    }

    /// Train both models with explicit hyper-parameters.
    ///
    /// # Panics
    /// Panics on an empty training set.
    pub fn train_with(ts: &TrainingSet, config: SvrConfig) -> Self {
        assert!(!ts.is_empty(), "cannot train on an empty training set");
        Self {
            model_m: Svr::fit(&ts.dataset_m, config),
            model_n: Svr::fit(&ts.dataset_n, config),
        }
    }

    /// Predict `(M, N)` for traversing `graph` with top-down on `arch_td`
    /// and bottom-up on `arch_bu` — one `RegressionModel(GI, ·, ·)` call of
    /// Algorithm 3.
    pub fn predict(&self, graph: &GraphStats, arch_td: &ArchSpec, arch_bu: &ArchSpec) -> FixedMN {
        let x = feature_vector(graph, arch_td, arch_bu);
        let m = self.model_m.predict(&x).clamp(M_RANGE.0, M_RANGE.1);
        let n = self.model_n.predict(&x).clamp(N_RANGE.0, N_RANGE.1);
        FixedMN::new(m, n)
    }

    /// Both `RegressionModel` calls of Algorithm 3 at once: the CPU→GPU
    /// handoff `(M1, N1)` and the GPU-internal `(M2, N2)`.
    pub fn predict_cross(&self, graph: &GraphStats, cpu: &ArchSpec, gpu: &ArchSpec) -> CrossParams {
        CrossParams {
            handoff: self.predict(graph, cpu, gpu),
            gpu: self.predict(graph, gpu, gpu),
        }
    }

    /// Support-vector counts `(M-model, N-model)` — a size diagnostic.
    pub fn support_counts(&self) -> (usize, usize) {
        (
            self.model_m.num_support_vectors(),
            self.model_n.num_support_vectors(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::{generate, paper_arch_pairs, TrainingConfig};
    use xbfs_archsim::Link;

    fn trained() -> (SwitchPredictor, TrainingSet) {
        let ts = generate(
            &TrainingConfig::quick(),
            &paper_arch_pairs(),
            &Link::pcie3(),
        );
        (SwitchPredictor::train(&ts), ts)
    }

    #[test]
    fn predictions_are_clamped_and_valid() {
        let (p, _) = trained();
        let g = xbfs_graph::rmat::rmat_csr(9, 8);
        let stats = GraphStats::rmat(&g, 0.57, 0.19, 0.19, 0.05);
        let cpu = ArchSpec::cpu_sandy_bridge();
        let gpu = ArchSpec::gpu_k20x();
        let mn = p.predict(&stats, &cpu, &gpu);
        assert!((1.0..=500.0).contains(&mn.m));
        assert!((1.0..=200.0).contains(&mn.n));
    }

    #[test]
    fn fits_training_labels_reasonably() {
        // In-sample: predicted M should be within the label's neighborhood
        // for most samples (high-C, tight-ε fit of exact labels).
        let (p, ts) = trained();
        let mut close = 0;
        for i in 0..ts.dataset_m.len() {
            let pred = {
                use xbfs_svm::Regressor;
                p.model_m.predict(ts.dataset_m.sample(i))
            };
            if (pred - ts.dataset_m.target(i)).abs() < 0.35 * (ts.dataset_m.target(i).abs() + 10.0)
            {
                close += 1;
            }
        }
        assert!(
            close * 2 >= ts.dataset_m.len(),
            "only {close}/{} in-sample predictions close",
            ts.dataset_m.len()
        );
    }

    #[test]
    fn cross_prediction_queries_both_pairs() {
        let (p, _) = trained();
        let g = xbfs_graph::rmat::rmat_csr(10, 16);
        let stats = GraphStats::rmat(&g, 0.57, 0.19, 0.19, 0.05);
        let cpu = ArchSpec::cpu_sandy_bridge();
        let gpu = ArchSpec::gpu_k20x();
        let params = p.predict_cross(&stats, &cpu, &gpu);
        // Both components valid.
        assert!(params.handoff.m >= 1.0 && params.gpu.m >= 1.0);
        // The GPU-internal prediction equals the (GPU, GPU) query.
        let direct = p.predict(&stats, &gpu, &gpu);
        assert_eq!(params.gpu, direct);
    }

    #[test]
    fn prediction_latency_is_negligible() {
        // The paper's <0.1 % overhead claim: a single prediction must be
        // orders of magnitude below a millisecond-scale traversal.
        let (p, _) = trained();
        let g = xbfs_graph::rmat::rmat_csr(9, 8);
        let stats = GraphStats::rmat(&g, 0.57, 0.19, 0.19, 0.05);
        let cpu = ArchSpec::cpu_sandy_bridge();
        let gpu = ArchSpec::gpu_k20x();
        let start = std::time::Instant::now();
        for _ in 0..100 {
            std::hint::black_box(p.predict_cross(&stats, &cpu, &gpu));
        }
        let per_call = start.elapsed().as_secs_f64() / 100.0;
        assert!(per_call < 1e-3, "prediction took {per_call}s");
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn rejects_empty_training_set() {
        let empty = TrainingSet {
            dataset_m: xbfs_svm::Dataset::new(12),
            dataset_n: xbfs_svm::Dataset::new(12),
            labels: vec![],
        };
        SwitchPredictor::train(&empty);
    }
}
