//! Hermetic stand-in for `serde_json`.
//!
//! JSON text on top of the vendored serde's [`Value`] tree: emission
//! (compact and pretty), a recursive-descent parser, and a simplified
//! [`json!`] macro (object/array literals whose values are expressions).
//! Only the surface this workspace uses is implemented.

pub use serde::de::Error;
pub use serde::value::{Number, Value};

use serde::{Deserialize, Serialize};

/// Serialize any value into the [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(v: &T) -> Value {
    v.to_value()
}

/// Serialize to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &v.to_value(), None, 0);
    Ok(out)
}

/// Serialize to two-space-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &v.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text and deserialize into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!("trailing input at byte {}", p.pos)));
    }
    T::from_value(&value)
}

/// Build a [`Value`] from a JSON-looking literal: `{…}` maps with
/// string-literal keys, `[…]` arrays, `null`, and arbitrary value
/// expressions implementing `Serialize`. A token-tree muncher in the
/// style of the real `serde_json`, covering the shapes this workspace
/// writes.
#[macro_export]
macro_rules! json {
    // -------- array elements: json!(@array [built elems] remaining tts)
    (@array [$($elems:expr,)*]) => { vec![$($elems,)*] };
    (@array [$($elems:expr),*]) => { vec![$($elems),*] };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json!(@array [$($elems,)* $crate::json!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($arr:tt)*] $($rest:tt)*) => {
        $crate::json!(@array [$($elems,)* $crate::json!([$($arr)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json!(@array [$($elems,)* $crate::json!({$($map)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json!(@array [$($elems,)* $crate::json!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json!(@array [$($elems,)* $crate::json!($last)])
    };
    (@array [$($elems:expr,)*] , $($rest:tt)*) => {
        $crate::json!(@array [$($elems,)*] $($rest)*)
    };

    // -------- object entries: json!(@object obj (key tts) (remaining) (copy))
    (@object $obj:ident () () ()) => {};
    // Commit one completed `key: value` pair, then continue.
    (@object $obj:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        $obj.push((($($key)+).into(), $value));
        $crate::json!(@object $obj () ($($rest)*) ($($rest)*));
    };
    // Commit the final pair (no trailing comma).
    (@object $obj:ident [$($key:tt)+] ($value:expr)) => {
        $obj.push((($($key)+).into(), $value));
    };
    // Value is `null` / an array / a map / a general expression.
    (@object $obj:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json!(@object $obj [$($key)+] ($crate::json!(null)) $($rest)*);
    };
    (@object $obj:ident ($($key:tt)+) (: [$($arr:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json!(@object $obj [$($key)+] ($crate::json!([$($arr)*])) $($rest)*);
    };
    (@object $obj:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json!(@object $obj [$($key)+] ($crate::json!({$($map)*})) $($rest)*);
    };
    (@object $obj:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json!(@object $obj [$($key)+] ($crate::json!($value)) , $($rest)*);
    };
    (@object $obj:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json!(@object $obj [$($key)+] ($crate::json!($value)));
    };
    // Not at a value yet — shift one token into the key accumulator.
    (@object $obj:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json!(@object $obj ($($key)* $tt) ($($rest)*) $copy);
    };

    // -------- entry points
    (null) => { $crate::Value::Null };
    ([]) => { $crate::Value::Array(vec![]) };
    ([ $($tt:tt)+ ]) => { $crate::Value::Array($crate::json!(@array [] $($tt)+)) };
    ({}) => { $crate::Value::Object(vec![]) };
    ({ $($tt:tt)+ }) => {{
        let mut object: ::std::vec::Vec<(::std::string::String, $crate::Value)> =
            ::std::vec::Vec::new();
        $crate::json!(@object object () ($($tt)+) ($($tt)+));
        $crate::Value::Object(object)
    }};
    ($e:expr) => { $crate::to_value(&$e) };
}

// ---------------------------------------------------------------- emission

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            write_seq(out, items.len(), indent, depth, '[', ']', |out, i, d| {
                write_value(out, &items[i], indent, d);
            });
        }
        Value::Object(entries) => {
            write_seq(out, entries.len(), indent, depth, '{', '}', |out, i, d| {
                write_string(out, &entries[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, &entries[i].1, indent, d);
            });
        }
    }
}

fn write_seq(
    out: &mut String,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if len > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    }
    out.push(close);
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::U64(v) => out.push_str(&v.to_string()),
        Number::I64(v) => out.push_str(&v.to_string()),
        // `{:?}` prints the shortest round-trippable decimal for finite
        // floats; JSON has no NaN/∞, so those degrade to null.
        Number::F64(v) if v.is_finite() => out.push_str(&format!("{v:?}")),
        Number::F64(_) => out.push_str("null"),
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(Error::custom("unexpected end of input")),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::custom(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => return Err(Error::custom(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(_) => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by this
                            // workspace's data; reject rather than corrupt.
                            let c = char::from_u32(cp)
                                .ok_or_else(|| Error::custom("unsupported \\u escape"))?;
                            out.push(c);
                        }
                        other => {
                            return Err(Error::custom(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::custom(format!("expected number at byte {start}")));
        }
        let n = if is_float {
            Number::F64(text.parse::<f64>().map_err(Error::custom)?)
        } else if let Ok(u) = text.parse::<u64>() {
            Number::U64(u)
        } else if let Ok(i) = text.parse::<i64>() {
            Number::I64(i)
        } else {
            Number::F64(text.parse::<f64>().map_err(Error::custom)?)
        };
        Ok(Value::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&1u32).unwrap(), "1");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("a\"b").unwrap(), "\"a\\\"b\"");
        assert_eq!(from_str::<u32>("1").unwrap(), 1);
        assert_eq!(from_str::<f64>("2.5e3").unwrap(), 2500.0);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn roundtrip_collections() {
        let v: Vec<(u32, f64)> = vec![(1, 0.5), (2, 0.25)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,0.5],[2,0.25]]");
        let back: Vec<(u32, f64)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn float_precision_survives() {
        let x = 0.1f64 + 0.2f64;
        let back: f64 = from_str(&to_string(&x).unwrap()).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn json_macro_builds_objects() {
        let items: Vec<Value> = vec![json!(1), json!(2)];
        let v = json!({
            "id": "t",
            "n": 3,
            "nested": { "ok": true },
            "items": items,
        });
        assert_eq!(v["id"], "t");
        assert_eq!(v["n"], 3);
        assert_eq!(v["nested"]["ok"], true);
        assert_eq!(v["items"][1], 2);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("tru").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }

    #[test]
    fn pretty_is_reparseable() {
        let v = json!({"a": [1, 2], "b": {"c": "d"}});
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains('\n'));
        assert_eq!(from_str::<Value>(&text).unwrap(), v);
    }
}
