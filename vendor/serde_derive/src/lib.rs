//! `#[derive(Serialize, Deserialize)]` for the vendored serde stand-in.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote` —
//! the build environment has no registry). Supports the shapes this
//! workspace uses: non-generic named structs, tuple structs, unit structs,
//! and enums whose variants are unit, named, or tuple. Generic types and
//! `#[serde(...)]` attributes are deliberately rejected with a compile
//! error rather than silently mis-handled.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed field list.
enum Fields {
    Unit,
    /// Named fields in declaration order.
    Named(Vec<String>),
    /// Number of tuple fields.
    Tuple(usize),
}

/// A parsed `struct` or `enum` item.
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item).parse().expect("generated impl must parse"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("error must parse"),
    }
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut tokens = input.into_iter().peekable();

    // Skip outer attributes (`#[...]`, doc comments) and visibility.
    let kind = loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
                // `pub`, `pub(crate)` (the group is consumed next turn) …
            }
            Some(_) => {}
            None => return Err("expected `struct` or `enum`".into()),
        }
    };

    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };

    if matches!(&tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("cannot derive for generic type `{name}`"));
    }

    if kind == "struct" {
        let fields = match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
            other => return Err(format!("unsupported struct body: {other:?}")),
        };
        Ok(Item::Struct { name, fields })
    } else {
        let body = match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
            other => return Err(format!("expected enum body, got {other:?}")),
        };
        Ok(Item::Enum {
            name,
            variants: parse_variants(body)?,
        })
    }
}

/// Field names of `{ pub a: T, b: U, … }` — idents directly followed by `:`
/// at angle-depth 0, skipping attributes and visibility.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes before the field.
        while matches!(&tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            tokens.next();
            tokens.next(); // the [...] group
        }
        // Visibility.
        if matches!(&tokens.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            tokens.next();
            if matches!(&tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                tokens.next();
            }
        }
        let Some(tok) = tokens.next() else { break };
        let TokenTree::Ident(id) = tok else {
            return Err(format!("expected field name, got {tok:?}"));
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field `{id}`, got {other:?}")),
        }
        fields.push(id.to_string());
        // Skip the type up to the next comma at angle-depth 0.
        let mut angle: i32 = 0;
        for tok in tokens.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                // `->` in fn-pointer types would confuse counting; none occur.
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                _ => {}
            }
        }
    }
    Ok(fields)
}

/// Number of fields in a tuple body `(T, U, …)`.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut angle: i32 = 0;
    let mut saw_token = false;
    for tok in stream {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                count += 1;
                saw_token = false;
                continue;
            }
            _ => {}
        }
        saw_token = true;
    }
    count + usize::from(saw_token)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, Fields)>, String> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        while matches!(&tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            tokens.next();
            tokens.next();
        }
        let Some(tok) = tokens.next() else { break };
        let TokenTree::Ident(id) = tok else {
            return Err(format!("expected variant name, got {tok:?}"));
        };
        let fields = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g.stream())?;
                tokens.next();
                Fields::Named(f)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                tokens.next();
                Fields::Tuple(n)
            }
            _ => Fields::Unit,
        };
        variants.push((id.to_string(), fields));
        // Skip to the comma separating variants (covers discriminants).
        for tok in tokens.by_ref() {
            if matches!(&tok, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
    }
    Ok(variants)
}

// ---------------------------------------------------------------- codegen

fn tuple_binders(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("__f{i}")).collect()
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Named(fs) => {
                    let pushes: String = fs
                        .iter()
                        .map(|f| {
                            format!(
                                "__fields.push((::std::string::String::from({f:?}), \
                                 ::serde::Serialize::to_value(&self.{f})));"
                            )
                        })
                        .collect();
                    format!(
                        "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> \
                         = ::std::vec::Vec::new(); {pushes} ::serde::Value::Object(__fields)"
                    )
                }
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{ \
                   fn to_value(&self) -> ::serde::Value {{ {body} }} \
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|(v, fields)| match fields {
                    Fields::Unit => format!(
                        "{name}::{v} => ::serde::Value::String(::std::string::String::from({v:?})),"
                    ),
                    Fields::Named(fs) => {
                        let binders = fs.join(", ");
                        let pushes: String = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "__fields.push((::std::string::String::from({f:?}), \
                                     ::serde::Serialize::to_value({f})));"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binders} }} => {{ \
                               let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> \
                               = ::std::vec::Vec::new(); {pushes} \
                               ::serde::Value::Object(vec![(::std::string::String::from({v:?}), \
                               ::serde::Value::Object(__fields))]) }}"
                        )
                    }
                    Fields::Tuple(n) => {
                        let binders = tuple_binders(*n);
                        let elems: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Object(vec![( \
                             ::std::string::String::from({v:?}), \
                             ::serde::Value::Array(vec![{}]))]),",
                            binders.join(", "),
                            elems.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{ \
                   fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }} \
                 }}"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let body = match item {
        Item::Struct { name, fields } => match fields {
            Fields::Unit => format!("Ok({name})"),
            Fields::Named(fs) => {
                let inits: Vec<String> = fs
                    .iter()
                    .map(|f| format!("{f}: ::serde::de::field(__obj, {f:?})?"))
                    .collect();
                format!(
                    "let __obj = __v.as_object().ok_or_else(|| \
                     ::serde::de::Error::custom(concat!(\"expected object for \", {name:?})))?; \
                     Ok({name} {{ {} }})",
                    inits.join(", ")
                )
            }
            Fields::Tuple(1) => {
                format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
            }
            Fields::Tuple(n) => {
                let elems: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?"))
                    .collect();
                format!(
                    "let __a = __v.as_array().ok_or_else(|| \
                     ::serde::de::Error::custom(\"expected array\"))?; \
                     if __a.len() != {n} {{ return Err(::serde::de::Error::custom(\
                     \"tuple struct arity mismatch\")); }} \
                     Ok({name}({}))",
                    elems.join(", ")
                )
            }
        },
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(v, _)| format!("{v:?} => return Ok({name}::{v}),"))
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter_map(|(v, fields)| match fields {
                    Fields::Unit => None,
                    Fields::Named(fs) => {
                        let inits: Vec<String> = fs
                            .iter()
                            .map(|f| format!("{f}: ::serde::de::field(__obj, {f:?})?"))
                            .collect();
                        Some(format!(
                            "{v:?} => {{ let __obj = __payload.as_object().ok_or_else(|| \
                             ::serde::de::Error::custom(\"expected variant object\"))?; \
                             return Ok({name}::{v} {{ {} }}); }}",
                            inits.join(", ")
                        ))
                    }
                    Fields::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?"))
                            .collect();
                        Some(format!(
                            "{v:?} => {{ let __a = __payload.as_array().ok_or_else(|| \
                             ::serde::de::Error::custom(\"expected variant array\"))?; \
                             if __a.len() != {n} {{ return Err(::serde::de::Error::custom(\
                             \"variant arity mismatch\")); }} \
                             return Ok({name}::{v}({})); }}",
                            elems.join(", ")
                        ))
                    }
                })
                .collect();
            format!(
                "if let Some(__s) = __v.as_str() {{ \
                   match __s {{ {unit_arms} _ => {{}} }} \
                 }} \
                 if let Some(__obj) = __v.as_object() {{ \
                   if __obj.len() == 1 {{ \
                     let (__tag, __payload) = &__obj[0]; \
                     match __tag.as_str() {{ {tagged_arms} _ => {{}} }} \
                   }} \
                 }} \
                 Err(::serde::de::Error::custom(concat!(\"no matching variant of \", {name:?})))"
            )
        }
    };
    let name = match item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    };
    format!(
        "impl ::serde::Deserialize for {name} {{ \
           fn from_value(__v: &::serde::Value) \
           -> ::std::result::Result<Self, ::serde::de::Error> {{ {body} }} \
         }}"
    )
}
