//! The owned value tree every (de)serialization passes through.

/// A JSON-shaped numeric value. Integers keep full 64-bit precision;
/// floats are IEEE doubles.
#[derive(Clone, Copy, Debug)]
pub enum Number {
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point.
    F64(f64),
}

impl Number {
    /// Value as `f64` (lossy for 64-bit integers beyond 2^53).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::U64(v) => v as f64,
            Number::I64(v) => v as f64,
            Number::F64(v) => v,
        }
    }

    /// Value as `u64` if exactly representable.
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::U64(v) => Some(v),
            Number::I64(v) => u64::try_from(v).ok(),
            Number::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            Number::F64(_) => None,
        }
    }

    /// Value as `i64` if exactly representable.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::U64(v) => i64::try_from(v).ok(),
            Number::I64(v) => Some(v),
            Number::F64(v) if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 => {
                Some(v as i64)
            }
            Number::F64(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.as_i64(), other.as_i64()) {
            (Some(a), Some(b)) => a == b,
            _ => match (self.as_u64(), other.as_u64()) {
                (Some(a), Some(b)) => a == b,
                _ => self.as_f64() == other.as_f64(),
            },
        }
    }
}

/// An owned, ordered tree of JSON-shaped data.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Value {
    /// `null` — also what lookups of missing keys return.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// Key/value pairs in insertion order (lookups are linear; the trees
    /// this workspace serializes are small).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrow as an object's entry list.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow as a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// As a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// As an `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// As a `u64` if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// As an `i64` if exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// Object field lookup (first match; `None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// `true` for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

macro_rules! eq_via_number {
    ($($t:ty => $variant:ident),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                matches!(self, Value::Number(n) if *n == Number::$variant(*other as _))
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

eq_via_number!(u8 => U64, u16 => U64, u32 => U64, u64 => U64, usize => U64,
               i8 => I64, i16 => I64, i32 => I64, i64 => I64, isize => I64,
               f32 => F64, f64 => F64);

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_and_compare() {
        let v = Value::Object(vec![
            ("x".into(), Value::Number(Number::U64(1))),
            ("s".into(), Value::String("hi".into())),
        ]);
        assert_eq!(v["x"], 1);
        assert_eq!(v["s"], "hi");
        assert!(v["missing"].is_null());
    }

    #[test]
    fn number_equality_crosses_representations() {
        assert_eq!(Number::U64(3), Number::I64(3));
        assert_eq!(Number::U64(3), Number::F64(3.0));
        assert_ne!(Number::F64(3.5), Number::I64(3));
    }
}
