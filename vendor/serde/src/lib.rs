//! Hermetic stand-in for the `serde` crate.
//!
//! This build environment has no crate registry, so the workspace vendors a
//! minimal serialization framework under the same crate name. The API is a
//! deliberate simplification: instead of serde's visitor-based zero-copy
//! data model, everything funnels through an owned [`Value`] tree
//! (JSON-shaped). `#[derive(Serialize, Deserialize)]` is provided by the
//! vendored `serde_derive` proc macro and generates `to_value`/`from_value`
//! impls mirroring serde's externally-tagged conventions:
//!
//! * named structs → objects, tuple structs → arrays (newtypes transparent);
//! * unit enum variants → `"Variant"`, data variants → `{"Variant": …}`;
//! * missing object keys deserialize as `Value::Null` (so `Option` fields
//!   default to `None`, matching serde's common usage).
//!
//! Only the surface this workspace uses is implemented. The vendored
//! `serde_json` builds its text format on the same [`Value`].

pub mod de;
pub mod ser;
pub mod value;

pub use de::Deserialize;
pub use ser::Serialize;
pub use value::{Number, Value};

// Derive macros live in the macro namespace; re-exporting them alongside
// the traits of the same name matches real serde's layout.
pub use serde_derive::{Deserialize, Serialize};
