//! Deserialization from the [`Value`] tree.

use crate::value::Value;

/// Deserialization failure: a human-readable path/type mismatch message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Build an error from any displayable message.
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from the value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Look up `name` in a derived struct's object and deserialize it.
/// Missing keys deserialize from `Value::Null`, so `Option` fields
/// tolerate omission while mandatory fields report it.
pub fn field<T: Deserialize>(obj: &[(String, Value)], name: &str) -> Result<T, Error> {
    let v = obj.iter().find(|(k, _)| k == name).map(|(_, v)| v);
    T::from_value(v.unwrap_or(&Value::Null))
        .map_err(|e| Error::custom(format!("field `{name}`: {e}")))
}

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_u64()
                    .and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_i64()
                    .and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}

de_uint!(u8, u16, u32, u64, usize);
de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected f64"))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::custom("expected f32"))
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::custom("expected bool"))
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

/// Borrowed strings deserialize by leaking an owned copy. Only `&'static
/// str` fields in benchmark presets hit this path, and only in tests, so
/// the deliberate leak is bounded and harmless.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(|s| &*Box::leak(s.to_string().into_boxed_str()))
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! de_tuple {
    ($(($($name:ident : $idx:tt),+ ; $len:expr))*) => {$(
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let a = v.as_array().ok_or_else(|| Error::custom("expected tuple array"))?;
                if a.len() != $len {
                    return Err(Error::custom(format!(
                        "expected {}-tuple, got {} elements", $len, a.len()
                    )));
                }
                Ok(($($name::from_value(&a[$idx])?,)+))
            }
        }
    )*};
}

de_tuple! {
    (A:0, B:1 ; 2)
    (A:0, B:1, C:2 ; 3)
    (A:0, B:1, C:2, D:3 ; 4)
}
