//! Serialization into the [`Value`] tree.

use crate::value::{Number, Value};
use std::collections::BTreeMap;

/// Types convertible into a [`Value`] tree.
pub trait Serialize {
    /// Build the value tree for `self`.
    fn to_value(&self) -> Value;
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
    )*};
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::U64(v as u64))
                } else {
                    Value::Number(Number::I64(v))
                }
            }
        }
    )*};
}

ser_uint!(u8, u16, u32, u64, usize);
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self as f64))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<K: AsRef<str>, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.as_ref().to_string(), v.to_value()))
                .collect(),
        )
    }
}

macro_rules! ser_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}

ser_tuple! {
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
}
