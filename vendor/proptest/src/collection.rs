//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `Vec<S::Value>` with length drawn from a range.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    len: std::ops::Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.len.clone().generate(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Vector of `element`-generated values with length in `len`.
pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { element, len }
}

/// Sorted-unique set of `element`-generated values, sized best-effort
/// within `len` (duplicates shrink the result; generation retries a
/// bounded number of times rather than looping forever on small domains).
#[derive(Clone, Debug)]
pub struct BTreeSetStrategy<S> {
    element: S,
    len: std::ops::Range<usize>,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = std::collections::BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.len.clone().generate(rng);
        let mut out = std::collections::BTreeSet::new();
        for _ in 0..target.saturating_mul(8).max(8) {
            if out.len() >= target {
                break;
            }
            out.insert(self.element.generate(rng));
        }
        out
    }
}

/// Set of `element`-generated values aiming for a size in `len`.
pub fn btree_set<S: Strategy>(element: S, len: std::ops::Range<usize>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    assert!(len.start < len.end, "empty length range");
    BTreeSetStrategy { element, len }
}
