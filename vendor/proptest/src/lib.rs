//! Hermetic stand-in for the `proptest` surface this workspace uses.
//!
//! Strategies generate values from a deterministic per-test RNG (seeded
//! from the test's name, so failures reproduce run-to-run) and the
//! `proptest!` macro loops each property over `ProptestConfig::cases`
//! generated inputs. Shrinking is intentionally absent: a failing case
//! is reported verbatim via the panic message instead of minimized.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod arbitrary {
    //! `any::<T>()` — strategies derived from a type alone.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generate one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_uint!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for i32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() as i32
        }
    }

    impl Arbitrary for i64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() as i64
        }
    }

    /// Whole-domain strategy for `T`.
    #[derive(Clone, Copy, Debug)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary + std::fmt::Debug> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The strategy covering all of `T`.
    pub fn any<T: Arbitrary + std::fmt::Debug>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod prelude {
    //! Everything a property-test file needs in scope.

    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert inside a property; on failure the whole case (with its
/// generated inputs) is reported by the `proptest!` harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), l, r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
            stringify!($lhs), stringify!($rhs), l, r, format!($($fmt)*)
        );
    }};
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            l
        );
    }};
}

/// Define property tests: each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` looping over `ProptestConfig::cases` generated
/// inputs. An optional leading `#![proptest_config(expr)]` sets the
/// config for every test in the block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::from_name(stringify!($name));
                for __case in 0..__config.cases {
                    let __inputs = ($(
                        $crate::strategy::Strategy::generate(&($strat), &mut __rng),
                    )*);
                    let __shown = format!("{:?}", __inputs);
                    let ($($pat,)*) = __inputs;
                    let __outcome = (|| -> ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = __outcome {
                        panic!(
                            "property `{}` failed at case {}/{}:\n{}\ninputs: {}",
                            stringify!($name), __case + 1, __config.cases, e, __shown
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @impl ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u32, u32)> {
        (1u32..50).prop_flat_map(|n| (Just(n), 0..n))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..17, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn flat_map_sees_outer_value((n, k) in arb_pair()) {
            prop_assert!(k < n);
        }

        #[test]
        fn vec_strategy_obeys_size(v in prop::collection::vec(any::<u8>(), 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
        }

        #[test]
        fn map_transforms(y in (0u32..10).prop_map(|x| x * 2)) {
            prop_assert_eq!(y % 2, 0);
            prop_assert!(y < 20);
        }
    }

    #[test]
    fn failing_property_panics_with_inputs() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(8))]
                fn always_fails(x in 0u32..4) {
                    prop_assert!(x > 100, "x was {}", x);
                }
            }
            always_fails();
        });
        let msg = *result.expect_err("must fail").downcast::<String>().unwrap();
        assert!(msg.contains("always_fails"), "message: {msg}");
        assert!(msg.contains("inputs:"), "message: {msg}");
    }
}
