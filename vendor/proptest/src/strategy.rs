//! The [`Strategy`] trait and combinators.

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking; a
/// strategy is just a deterministic sampler over the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value: std::fmt::Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<T: std::fmt::Debug, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy built from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: std::fmt::Debug, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Copy, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start + rng.below(width) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                if start == 0 && end as u128 == <$t>::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                let width = (end as u128 - start as u128 + 1) as u64;
                start + rng.below(width) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(width) as i128) as $t
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
