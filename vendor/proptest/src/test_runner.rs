//! Test-loop configuration, RNG, and failure plumbing.

/// Per-block configuration; only the case count is honored.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated inputs per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property case (carried by `prop_assert!`-family macros).
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Wrap a failure message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic generator feeding strategies: xoshiro256++ seeded from
/// the property's name, so every run replays the same case sequence.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl TestRng {
    /// Seed from a test name (FNV-1a over the bytes, then SplitMix64).
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in name.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mut sm = h;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit block.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty draw domain");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform draw from `[0, 1)` with 53 significant bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
