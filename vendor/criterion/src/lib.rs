//! Hermetic stand-in for the `criterion` surface this workspace uses.
//!
//! Each registered benchmark runs its routine a small fixed number of
//! times and prints a min/mean wall-clock line. There is no statistical
//! analysis, warm-up modeling, or HTML report — the goal is that
//! `cargo bench` compiles, runs, and produces comparable-order timings
//! without network access to the real crate.

use std::time::{Duration, Instant};

/// Opaque hint against constant-folding (delegates to `std::hint`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterized benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{function}/{parameter}"),
        }
    }

    /// Parameter-only identifier.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Timing harness handed to each benchmark routine.
pub struct Bencher {
    iters: u32,
    min: Duration,
    total: Duration,
    runs: u32,
}

impl Bencher {
    /// Time `routine` a fixed number of iterations.
    pub fn iter<T>(&mut self, mut routine: impl FnMut() -> T) {
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(routine());
            let dt = start.elapsed();
            self.min = self.min.min(dt);
            self.total += dt;
            self.runs += 1;
        }
    }
}

/// Top-level benchmark registry.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            iters: 5,
        }
    }
}

/// A named set of benchmarks sharing iteration settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    iters: u32,
}

impl BenchmarkGroup<'_> {
    /// Iterations per routine (upstream: samples per benchmark).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = (n as u32).clamp(1, 20);
        self
    }

    /// Accepted for API compatibility; warm-up is a single untimed run.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; measurement length is iteration-count based.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Register and immediately run a benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: self.iters,
            min: Duration::MAX,
            total: Duration::ZERO,
            runs: 0,
        };
        f(&mut b);
        self.report(&id.to_string(), &b);
        self
    }

    /// Register and immediately run a benchmark taking an input by reference.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            iters: self.iters,
            min: Duration::MAX,
            total: Duration::ZERO,
            runs: 0,
        };
        f(&mut b, input);
        self.report(&id.to_string(), &b);
        self
    }

    /// Close the group (no-op beyond symmetry with upstream).
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, b: &Bencher) {
        if b.runs == 0 {
            println!("{}/{id}: no iterations recorded", self.name);
            return;
        }
        let mean = b.total / b.runs;
        println!(
            "{}/{id}: min {:?}, mean {:?} over {} iters",
            self.name, b.min, mean, b.runs
        );
    }
}

/// Collect benchmark functions into a runner (mirrors upstream shape).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_routines() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut calls = 0u32;
        group.sample_size(10);
        group.bench_function("counting", |b| b.iter(|| calls += 1));
        group.finish();
        assert_eq!(calls, 10);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut seen = 0u64;
        group.sample_size(1);
        group.bench_with_input(BenchmarkId::new("p", 7), &7u64, |b, &x| b.iter(|| seen = x));
        assert_eq!(seen, 7);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(9).to_string(), "9");
    }
}
