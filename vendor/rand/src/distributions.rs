//! Distribution sampling (only the uniform surface this workspace needs).

use crate::RngCore;

/// A sampleable distribution over `T`.
pub trait Distribution<T> {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Uniform distribution over a half-open interval.
#[derive(Clone, Copy, Debug)]
pub struct Uniform<T> {
    low: T,
    high: T,
}

impl Uniform<f64> {
    /// Uniform over `[low, high)`.
    ///
    /// # Panics
    /// Panics unless `low < high` and both are finite.
    pub fn new(low: f64, high: f64) -> Self {
        assert!(
            low.is_finite() && high.is_finite(),
            "uniform bounds must be finite"
        );
        assert!(low < high, "uniform requires low < high");
        Uniform { low, high }
    }
}

impl Distribution<f64> for Uniform<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.low + crate::unit_f64(rng.next_u64()) * (self.high - self.low)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SeedableRng, StdRng};

    #[test]
    fn uniform_unit_interval() {
        let unit = Uniform::new(0.0f64, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut lo_half = 0usize;
        for _ in 0..2000 {
            let r = unit.sample(&mut rng);
            assert!((0.0..1.0).contains(&r));
            if r < 0.5 {
                lo_half += 1;
            }
        }
        assert!((800..1200).contains(&lo_half), "lo_half = {lo_half}");
    }

    #[test]
    #[should_panic(expected = "low < high")]
    fn uniform_rejects_empty() {
        Uniform::new(1.0f64, 1.0);
    }
}
