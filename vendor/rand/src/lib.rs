//! Hermetic stand-in for the `rand` 0.8 API surface this workspace uses.
//!
//! Backed by xoshiro256++ seeded through SplitMix64 — the same
//! construction the real `rand` ecosystem recommends for reproducible
//! simulation. Determinism per seed is the property the workspace's
//! generators and tests rely on; statistical indistinguishability from
//! upstream `StdRng` is *not* promised (and not needed — every consumer
//! seeds explicitly and only asserts self-consistency).

pub mod distributions;
pub mod rngs;

pub use rngs::StdRng;

/// Core entropy source: 64-bit output blocks.
pub trait RngCore {
    /// Next raw 64-bit block.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit block (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seed material.
pub trait SeedableRng: Sized {
    /// Build from a single `u64` seed, expanded via SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range expressible to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as u128).wrapping_sub(self.start as u128);
                // Lemire-style 128-bit multiply keeps bias negligible for
                // any width this workspace uses.
                let hi = ((rng.next_u64() as u128 * width) >> 64) as $t;
                self.start + hi
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == 0 && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let width = (end as u128) - (start as u128) + 1;
                let hi = ((rng.next_u64() as u128 * width) >> 64) as $t;
                start + hi
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let hi = ((rng.next_u64() as u128 * width) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
    )*};
}

signed_sample_range!(i32: u32, i64: u64, isize: usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Map a raw draw onto [0, 1) with 53 significant bits.
pub(crate) fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Convenience draws layered over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        unit_f64(self.next_u64()) < p
    }

    /// Bernoulli draw with probability `numerator / denominator`.
    ///
    /// # Panics
    /// Panics if `denominator == 0` or `numerator > denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0, "gen_ratio denominator must be positive");
        assert!(
            numerator <= denominator,
            "gen_ratio numerator exceeds denominator"
        );
        self.gen_range(0..denominator) < numerator
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0usize..=5);
            assert!(w <= 5);
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let s = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        assert!(rng.gen_ratio(4, 4));
        assert!(!rng.gen_ratio(0, 4));
    }

    #[test]
    fn ratio_roughly_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..4000).filter(|_| rng.gen_ratio(3, 4)).count();
        assert!((2700..3300).contains(&hits), "hits = {hits}");
    }
}
